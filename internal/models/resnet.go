package models

import (
	"strconv"

	"repro/internal/nn"
)

// ResNet construction following torchvision: a 7×7 stem, four stages of
// basic blocks (ResNet-18) or bottleneck blocks (ResNet-50/152), global
// average pooling, and a fully connected classifier.

type blockKind int

const (
	basicBlockKind blockKind = iota
	bottleneckKind
)

func (k blockKind) expansion() int {
	if k == bottleneckKind {
		return 4
	}
	return 1
}

// basicBlock: 3×3 conv – bn – relu – 3×3 conv – bn, residual add, relu.
func basicBlock(inplanes, planes, stride int) nn.Module {
	body := nn.NewNamedSequential(
		nn.Child{Name: "conv1", Module: nn.NewConv2d(inplanes, planes, 3, stride, 1, 1, false)},
		nn.Child{Name: "bn1", Module: nn.NewBatchNorm2d(planes)},
		nn.Child{Name: "relu1", Module: nn.NewReLU()},
		nn.Child{Name: "conv2", Module: nn.NewConv2d(planes, planes, 3, 1, 1, 1, false)},
		nn.Child{Name: "bn2", Module: nn.NewBatchNorm2d(planes)},
	)
	var shortcut nn.Module
	if stride != 1 || inplanes != planes {
		shortcut = nn.NewNamedSequential(
			nn.Child{Name: "conv", Module: nn.NewConv2d(inplanes, planes, 1, stride, 0, 1, false)},
			nn.Child{Name: "bn", Module: nn.NewBatchNorm2d(planes)},
		)
	}
	return nn.NewResidual(body, shortcut, nn.NewReLU())
}

// bottleneck: 1×1 reduce – 3×3 – 1×1 expand (×4), residual add, relu.
func bottleneck(inplanes, planes, stride int) nn.Module {
	out := planes * 4
	body := nn.NewNamedSequential(
		nn.Child{Name: "conv1", Module: nn.NewConv2d(inplanes, planes, 1, 1, 0, 1, false)},
		nn.Child{Name: "bn1", Module: nn.NewBatchNorm2d(planes)},
		nn.Child{Name: "relu1", Module: nn.NewReLU()},
		nn.Child{Name: "conv2", Module: nn.NewConv2d(planes, planes, 3, stride, 1, 1, false)},
		nn.Child{Name: "bn2", Module: nn.NewBatchNorm2d(planes)},
		nn.Child{Name: "relu2", Module: nn.NewReLU()},
		nn.Child{Name: "conv3", Module: nn.NewConv2d(planes, out, 1, 1, 0, 1, false)},
		nn.Child{Name: "bn3", Module: nn.NewBatchNorm2d(out)},
	)
	var shortcut nn.Module
	if stride != 1 || inplanes != out {
		shortcut = nn.NewNamedSequential(
			nn.Child{Name: "conv", Module: nn.NewConv2d(inplanes, out, 1, stride, 0, 1, false)},
			nn.Child{Name: "bn", Module: nn.NewBatchNorm2d(out)},
		)
	}
	return nn.NewResidual(body, shortcut, nn.NewReLU())
}

func buildResNet(kind blockKind, layers []int, numClasses int) nn.Module {
	makeBlock := basicBlock
	if kind == bottleneckKind {
		makeBlock = bottleneck
	}
	inplanes := 64
	stage := func(planes, blocks, stride int) nn.Module {
		var children []nn.Child
		for i := 0; i < blocks; i++ {
			s := 1
			if i == 0 {
				s = stride
			}
			children = append(children, nn.Child{Name: strconv.Itoa(i), Module: makeBlock(inplanes, planes, s)})
			inplanes = planes * kind.expansion()
		}
		return nn.NewNamedSequential(children...)
	}

	children := []nn.Child{
		{Name: "conv1", Module: nn.NewConv2d(3, 64, 7, 2, 3, 1, false)},
		{Name: "bn1", Module: nn.NewBatchNorm2d(64)},
		{Name: "relu", Module: nn.NewReLU()},
		{Name: "maxpool", Module: nn.NewMaxPool2d(3, 2, 1, false)},
		{Name: "layer1", Module: stage(64, layers[0], 1)},
		{Name: "layer2", Module: stage(128, layers[1], 2)},
		{Name: "layer3", Module: stage(256, layers[2], 2)},
		{Name: "layer4", Module: stage(512, layers[3], 2)},
		{Name: "avgpool", Module: nn.NewGlobalAvgPool2d()},
		{Name: "flatten", Module: nn.NewFlatten()},
		{Name: "fc", Module: nn.NewLinear(512*kind.expansion(), numClasses)},
	}
	return nn.NewNamedSequential(children...)
}

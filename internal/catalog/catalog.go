// Package catalog implements the server-side model catalog: the paper's U4
// requirement that "the server has to monitor every model that exists and
// has to be able to losslessly recover it when requested". It provides
// lineage queries over the base-model references the save approaches store
// (list models, walk derivation chains, find descendants) and a safe
// garbage collector that deletes models together with their private
// artifacts — refusing to break chains that other models still depend on.
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/docdb"
	"repro/internal/filestore"
)

// Catalog wraps the shared stores with read-mostly management operations.
type Catalog struct {
	stores core.Stores
}

// New creates a catalog over the given stores.
func New(stores core.Stores) *Catalog {
	return &Catalog{stores: stores}
}

// Entry summarizes one saved model.
type Entry struct {
	ID       string `json:"id"`
	Approach string `json:"approach"`
	BaseID   string `json:"base_id,omitempty"`
	// Kind reports how the model is materialized: "snapshot" (full
	// parameters), "update" (parameter update), or "provenance".
	Kind string `json:"kind"`
	// StorageBytes is the model's own artifact footprint (files only;
	// document sizes are negligible and engine dependent).
	StorageBytes int64 `json:"storage_bytes"`
}

// ErrInUse is returned when deleting a model that other models derive from.
var ErrInUse = errors.New("catalog: model is a base of other models")

// List returns every saved model, sorted by identifier for determinism.
func (c *Catalog) List() ([]Entry, error) {
	ids, err := c.stores.Meta.IDs(core.ColModels)
	if err != nil {
		return nil, err
	}
	sort.Strings(ids)
	out := make([]Entry, 0, len(ids))
	for _, id := range ids {
		e, err := c.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Get returns the catalog entry of one model.
func (c *Catalog) Get(id string) (Entry, error) {
	raw, err := c.stores.Meta.Get(core.ColModels, id)
	if errors.Is(err, docdb.ErrNotFound) {
		return Entry{}, fmt.Errorf("%w: %s", core.ErrModelNotFound, id)
	}
	if err != nil {
		return Entry{}, err
	}
	e := Entry{ID: id}
	e.Approach, _ = raw["approach"].(string)
	e.BaseID, _ = raw["base_id"].(string)
	switch {
	case str(raw["code_file_ref"]) != "":
		e.Kind = "snapshot"
	case str(raw["params_file_ref"]) != "":
		e.Kind = "update"
	case str(raw["service_doc_id"]) != "":
		e.Kind = "provenance"
	default:
		e.Kind = "unknown"
	}
	for _, ref := range c.fileRefs(raw) {
		if n, err := c.stores.Files.Size(ref); err == nil {
			e.StorageBytes += n
		}
	}
	return e, nil
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

// fileRefs collects the file-store references a model document owns,
// including those of its train-service document.
func (c *Catalog) fileRefs(raw docdb.Document) []string {
	var refs []string
	add := func(v any) {
		if s := str(v); s != "" {
			refs = append(refs, s)
		}
	}
	add(raw["code_file_ref"])
	add(raw["params_file_ref"])
	if svcID := str(raw["service_doc_id"]); svcID != "" {
		if svcRaw, err := c.stores.Meta.Get(core.ColServices, svcID); err == nil {
			if ref := str(svcRaw["dataset_ref"]); ref != "" && !strings.HasPrefix(ref, "external:") {
				refs = append(refs, ref)
			}
			for _, w := range asMap(svcRaw["wrappers"]) {
				add(asMap(w)["state_file_ref"])
			}
		}
	}
	return refs
}

// asMap normalizes the two map types JSON documents decode into.
func asMap(v any) map[string]any {
	switch m := v.(type) {
	case map[string]any:
		return m
	case docdb.Document:
		return map[string]any(m)
	default:
		return nil
	}
}

// Chain returns the derivation chain from id down to its snapshot root:
// [id, base, base-of-base, ..., root].
func (c *Catalog) Chain(id string) ([]Entry, error) {
	var out []Entry
	seen := map[string]bool{}
	for id != "" {
		if seen[id] {
			return nil, fmt.Errorf("catalog: derivation cycle at %s", id)
		}
		seen[id] = true
		e, err := c.Get(id)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		id = e.BaseID
	}
	return out, nil
}

// Children returns the models directly derived from id, sorted. (Documents
// do not carry their own identifiers, so the scan maps ids to documents
// explicitly instead of using Find.)
func (c *Catalog) Children(id string) ([]string, error) {
	ids, err := c.stores.Meta.IDs(core.ColModels)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, cid := range ids {
		raw, err := c.stores.Meta.Get(core.ColModels, cid)
		if err != nil {
			continue
		}
		if str(raw["base_id"]) == id {
			out = append(out, cid)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Descendants returns every model transitively derived from id, sorted.
func (c *Catalog) Descendants(id string) ([]string, error) {
	var out []string
	queue := []string{id}
	seen := map[string]bool{id: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		kids, err := c.Children(cur)
		if err != nil {
			return nil, err
		}
		for _, k := range kids {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
				queue = append(queue, k)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// Roots returns the models with no base reference.
func (c *Catalog) Roots() ([]string, error) {
	ids, err := c.stores.Meta.IDs(core.ColModels)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, id := range ids {
		raw, err := c.stores.Meta.Get(core.ColModels, id)
		if err != nil {
			return nil, err
		}
		if str(raw["base_id"]) == "" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete removes a model and its private artifacts. Models that other
// models derive from cannot be deleted unless force is set — deleting a
// base breaks the recursive recovery of every descendant saved with the
// parameter update or provenance approach (baseline descendants only lose
// their lineage link, not recoverability, but the reference still dangles).
func (c *Catalog) Delete(id string, force bool) error {
	raw, err := c.stores.Meta.Get(core.ColModels, id)
	if errors.Is(err, docdb.ErrNotFound) {
		return fmt.Errorf("%w: %s", core.ErrModelNotFound, id)
	}
	if err != nil {
		return err
	}
	if !force {
		kids, err := c.Children(id)
		if err != nil {
			return err
		}
		if len(kids) > 0 {
			return fmt.Errorf("%w: %s has %d dependent model(s)", ErrInUse, id, len(kids))
		}
	}
	// Delete owned artifacts, then sub-documents, then the root document.
	for _, ref := range c.fileRefs(raw) {
		if err := c.stores.Files.Delete(ref); err != nil && !errors.Is(err, filestore.ErrNotFound) {
			return err
		}
	}
	for col, key := range map[string]string{
		core.ColEnvironments: "env_doc_id",
		core.ColLayerHashes:  "hash_doc_id",
		core.ColServices:     "service_doc_id",
	} {
		if ref := str(raw[key]); ref != "" {
			if err := c.stores.Meta.Delete(col, ref); err != nil && !errors.Is(err, docdb.ErrNotFound) {
				return err
			}
		}
	}
	return c.stores.Meta.Delete(core.ColModels, id)
}

// Stats summarizes the catalog.
type Stats struct {
	Models      int   `json:"models"`
	Snapshots   int   `json:"snapshots"`
	Updates     int   `json:"updates"`
	Provenance  int   `json:"provenance"`
	TotalBytes  int64 `json:"total_bytes"`
	Unreachable int   `json:"unreachable_blobs"`
}

// Stats computes catalog statistics, including the number of file-store
// blobs no model references (candidates for CollectGarbage).
func (c *Catalog) Stats() (Stats, error) {
	entries, err := c.List()
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	st.Models = len(entries)
	for _, e := range entries {
		switch e.Kind {
		case "snapshot":
			st.Snapshots++
		case "update":
			st.Updates++
		case "provenance":
			st.Provenance++
		}
		st.TotalBytes += e.StorageBytes
	}
	orphans, err := c.unreferencedBlobs()
	if err != nil {
		return Stats{}, err
	}
	st.Unreachable = len(orphans)
	return st, nil
}

// unreferencedBlobs lists file-store blobs that no model document
// references.
func (c *Catalog) unreferencedBlobs() ([]string, error) {
	referenced := map[string]bool{}
	ids, err := c.stores.Meta.IDs(core.ColModels)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		raw, err := c.stores.Meta.Get(core.ColModels, id)
		if err != nil {
			return nil, err
		}
		for _, ref := range c.fileRefs(raw) {
			referenced[ref] = true
		}
	}
	all, err := c.stores.Files.List()
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, b := range all {
		if !referenced[b] {
			orphans = append(orphans, b)
		}
	}
	sort.Strings(orphans)
	return orphans, nil
}

// CollectGarbage deletes file-store blobs that no model references (e.g.
// artifacts left behind by force-deleted chains) and returns how many blobs
// and bytes were reclaimed.
func (c *Catalog) CollectGarbage() (blobs int, bytes int64, err error) {
	orphans, err := c.unreferencedBlobs()
	if err != nil {
		return 0, 0, err
	}
	for _, b := range orphans {
		n, err := c.stores.Files.Size(b)
		if err != nil {
			continue
		}
		if err := c.stores.Files.Delete(b); err != nil {
			return blobs, bytes, err
		}
		blobs++
		bytes += n
	}
	return blobs, bytes, nil
}

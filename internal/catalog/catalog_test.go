package catalog

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/docdb"
	"repro/internal/filestore"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/train"
)

func testStores(t *testing.T) core.Stores {
	t.Helper()
	files, err := filestore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return core.Stores{Meta: docdb.NewMemStore(), Files: files}
}

func tinySpec() models.Spec { return models.Spec{Arch: models.TinyCNNName, NumClasses: 4} }

// buildChain saves U1 → A → B with the PUA and returns the ids.
func buildChain(t *testing.T, stores core.Stores) (u1, a, b string) {
	t.Helper()
	pua := core.NewParamUpdate(stores)
	net, err := models.New(models.TinyCNNName, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := pua.Save(core.SaveInfo{Spec: tinySpec(), Net: net})
	if err != nil {
		t.Fatal(err)
	}
	bump := func() {
		w, _ := nn.StateDictOf(net).Get("fc.weight")
		w.Data()[0] += 1
	}
	bump()
	ra, err := pua.Save(core.SaveInfo{Spec: tinySpec(), Net: net, BaseID: r1.ID})
	if err != nil {
		t.Fatal(err)
	}
	bump()
	rb, err := pua.Save(core.SaveInfo{Spec: tinySpec(), Net: net, BaseID: ra.ID})
	if err != nil {
		t.Fatal(err)
	}
	return r1.ID, ra.ID, rb.ID
}

func TestListGetAndKinds(t *testing.T) {
	stores := testStores(t)
	u1, a, _ := buildChain(t, stores)
	cat := New(stores)

	entries, err := cat.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	e, err := cat.Get(u1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "snapshot" || e.BaseID != "" || e.StorageBytes <= 0 {
		t.Fatalf("u1 entry = %+v", e)
	}
	e, err = cat.Get(a)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "update" || e.BaseID != u1 {
		t.Fatalf("a entry = %+v", e)
	}
	if _, err := cat.Get("missing"); !errors.Is(err, core.ErrModelNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestProvenanceKindAndRefs(t *testing.T) {
	stores := testStores(t)
	mpa := core.NewProvenance(stores)
	net, err := models.New(models.TinyCNNName, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	u1, err := mpa.Save(core.SaveInfo{Spec: tinySpec(), Net: net})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.Generate(dataset.Spec{Name: "cat", Images: 8, H: 8, W: 8, Classes: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loader, _ := train.NewDataLoader(ds, train.LoaderConfig{BatchSize: 4, OutH: 8, OutW: 8, Shuffle: true, Seed: 4})
	svc := train.NewImageClassifierTrainService(
		train.ServiceConfig{Epochs: 1, Seed: 5, Deterministic: true},
		loader, train.NewSGD(train.SGDConfig{LR: 0.01, Momentum: 0.9}))
	rec, err := core.NewProvenanceRecord(svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Train(net); err != nil {
		t.Fatal(err)
	}
	res, err := mpa.Save(core.SaveInfo{Spec: tinySpec(), Net: net, BaseID: u1.ID, Provenance: rec})
	if err != nil {
		t.Fatal(err)
	}
	cat := New(stores)
	e, err := cat.Get(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "provenance" {
		t.Fatalf("kind = %q", e.Kind)
	}
	// The dataset archive and optimizer state count toward storage.
	if e.StorageBytes < ds.Spec.SizeBytes()/2 {
		t.Fatalf("storage = %d, want at least the dataset archive", e.StorageBytes)
	}
}

func TestChainChildrenDescendantsRoots(t *testing.T) {
	stores := testStores(t)
	u1, a, b := buildChain(t, stores)
	cat := New(stores)

	chain, err := cat.Chain(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0].ID != b || chain[1].ID != a || chain[2].ID != u1 {
		t.Fatalf("chain = %+v", chain)
	}
	kids, err := cat.Children(u1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 1 || kids[0] != a {
		t.Fatalf("children = %v", kids)
	}
	desc, err := cat.Descendants(u1)
	if err != nil {
		t.Fatal(err)
	}
	if len(desc) != 2 {
		t.Fatalf("descendants = %v", desc)
	}
	roots, err := cat.Roots()
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0] != u1 {
		t.Fatalf("roots = %v", roots)
	}
}

func TestChainDetectsCycle(t *testing.T) {
	stores := testStores(t)
	u1, a, _ := buildChain(t, stores)
	// Corrupt: make u1 point at a, forming a cycle.
	raw, err := stores.Meta.Get(core.ColModels, u1)
	if err != nil {
		t.Fatal(err)
	}
	raw["base_id"] = a
	if err := stores.Meta.Put(core.ColModels, u1, raw); err != nil {
		t.Fatal(err)
	}
	if _, err := New(stores).Chain(a); err == nil {
		t.Fatal("expected cycle error")
	}
}

func TestDeleteRefusesBasesAndReclaims(t *testing.T) {
	stores := testStores(t)
	u1, a, b := buildChain(t, stores)
	cat := New(stores)

	if err := cat.Delete(u1, false); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting base: err = %v, want ErrInUse", err)
	}
	if err := cat.Delete(a, false); !errors.Is(err, ErrInUse) {
		t.Fatalf("deleting middle: err = %v, want ErrInUse", err)
	}
	// Leaf deletion works and removes its artifacts.
	before, _ := stores.Files.Stats()
	if err := cat.Delete(b, false); err != nil {
		t.Fatal(err)
	}
	after, _ := stores.Files.Stats()
	if after.Blobs >= before.Blobs {
		t.Fatal("delete did not remove artifacts")
	}
	if _, err := cat.Get(b); !errors.Is(err, core.ErrModelNotFound) {
		t.Fatal("model document survived delete")
	}
	// Now the chain can be torn down leaf-first.
	if err := cat.Delete(a, false); err != nil {
		t.Fatal(err)
	}
	if err := cat.Delete(u1, false); err != nil {
		t.Fatal(err)
	}
	entries, _ := cat.List()
	if len(entries) != 0 {
		t.Fatalf("entries left: %v", entries)
	}
	st, err := stores.Files.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Blobs != 0 {
		t.Fatalf("%d blobs left after full teardown", st.Blobs)
	}
	if err := cat.Delete(u1, false); !errors.Is(err, core.ErrModelNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestForceDeleteAndGarbageCollection(t *testing.T) {
	stores := testStores(t)
	u1, _, b := buildChain(t, stores)
	cat := New(stores)

	// Force-delete the root: descendants keep their documents, but the
	// root's blobs are gone and the derived models reference a missing
	// base.
	if err := cat.Delete(u1, true); err != nil {
		t.Fatal(err)
	}
	pua := core.NewParamUpdate(stores)
	if _, err := pua.Recover(b, core.RecoverOptions{}); err == nil {
		t.Fatal("recovering after force delete should fail")
	}

	// Plant an orphan blob; GC must reclaim it without touching live ones.
	orphanID, _, _, err := stores.Files.SaveBytes(make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	st, err := cat.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Unreachable == 0 {
		t.Fatal("stats missed the orphan blob")
	}
	blobs, bytes, err := cat.CollectGarbage()
	if err != nil {
		t.Fatal(err)
	}
	if blobs == 0 || bytes < 1024 {
		t.Fatalf("gc reclaimed %d blobs / %d bytes", blobs, bytes)
	}
	if stores.Files.Exists(orphanID) {
		t.Fatal("orphan survived gc")
	}
	// Live blobs of the remaining models survived.
	for _, id := range []string{b} {
		e, err := cat.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if e.StorageBytes == 0 {
			t.Fatal("gc deleted a live blob")
		}
	}
}

func TestStatsCounts(t *testing.T) {
	stores := testStores(t)
	buildChain(t, stores)
	st, err := New(stores).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Models != 3 || st.Snapshots != 1 || st.Updates != 2 || st.TotalBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

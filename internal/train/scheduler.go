package train

import (
	"encoding/json"
	"fmt"
)

// StepLR is a step learning-rate scheduler: every StepSize epochs the
// optimizer's learning rate is multiplied by Gamma. Like the optimizer, it
// is a stateful wrapped object in the paper's provenance model: its epoch
// counter cannot be recovered from the constructor arguments, so it is
// captured in a state file before training and restored on recovery —
// otherwise a reproduced training would restart the schedule and diverge
// from the saved model.
type StepLR struct {
	Config StepLRConfig
	// baseLR is the learning rate the schedule decays from.
	baseLR float32
	// epochCount is the internal state: how many epochs have been stepped.
	epochCount int
}

// StepLRConfig holds the scheduler's constructor arguments.
type StepLRConfig struct {
	StepSize int     `json:"step_size"`
	Gamma    float32 `json:"gamma"`
}

// NewStepLR creates a scheduler driving opt's learning rate.
func NewStepLR(cfg StepLRConfig, opt *SGD) (*StepLR, error) {
	if cfg.StepSize <= 0 {
		return nil, fmt.Errorf("train: StepLR step size %d", cfg.StepSize)
	}
	if cfg.Gamma <= 0 {
		return nil, fmt.Errorf("train: StepLR gamma %v", cfg.Gamma)
	}
	return &StepLR{Config: cfg, baseLR: opt.Config.LR}, nil
}

// Step advances the schedule by one epoch and updates the optimizer's
// learning rate.
func (s *StepLR) Step(opt *SGD) {
	s.epochCount++
	decays := s.epochCount / s.Config.StepSize
	lr := s.baseLR
	for i := 0; i < decays; i++ {
		lr *= s.Config.Gamma
	}
	opt.Config.LR = lr
}

// EpochCount returns the scheduler's internal epoch counter.
func (s *StepLR) EpochCount() int { return s.epochCount }

// schedulerState is the serialized internal state (the "state file").
type schedulerState struct {
	BaseLR     float32 `json:"base_lr"`
	EpochCount int     `json:"epoch_count"`
}

// MarshalState serializes the scheduler's internal state.
func (s *StepLR) MarshalState() ([]byte, error) {
	return json.Marshal(schedulerState{BaseLR: s.baseLR, EpochCount: s.epochCount})
}

// UnmarshalState restores internal state written by MarshalState.
func (s *StepLR) UnmarshalState(b []byte) error {
	var st schedulerState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("train: decoding scheduler state: %w", err)
	}
	s.baseLR = st.BaseLR
	s.epochCount = st.EpochCount
	return nil
}

// MarshalConfig encodes the constructor arguments as JSON.
func (s *StepLR) MarshalConfig() (json.RawMessage, error) {
	return json.Marshal(s.Config)
}

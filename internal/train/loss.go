package train

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes the mean softmax cross-entropy loss of logits
// [N, C] against integer labels, and the gradient of the loss with respect
// to the logits. All reductions run serially in index order, so the loss is
// deterministic regardless of execution mode; the deterministic/parallel
// split of the evaluation lives in the convolution kernels where the paper
// locates it. Malformed inputs — logits that are not [N, C], a label count
// that does not match N, or a label outside [0, C) — yield an error.
func CrossEntropy(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor, error) {
	if logits.NDim() != 2 {
		return 0, nil, fmt.Errorf("train: CrossEntropy needs [N, C] logits, got %v", logits.Shape())
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, nil, fmt.Errorf("train: %d labels for %d samples", len(labels), n)
	}
	grad := tensor.Zeros(n, c)
	ld, gd := logits.Data(), grad.Data()
	var total float64
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		grow := gd[i*c : (i+1)*c]
		label := labels[i]
		if label < 0 || label >= c {
			return 0, nil, fmt.Errorf("train: label %d out of range [0,%d)", label, c)
		}
		// Stable softmax: subtract the row max.
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			grow[j] = float32(e)
			sum += e
		}
		logSum := math.Log(sum)
		total += logSum - float64(row[label]-max)
		scale := float32(1/sum) * invN
		for j := range grow {
			grow[j] *= scale
		}
		grow[label] -= invN
	}
	return float32(total / float64(n)), grad, nil
}

// Accuracy returns the fraction of samples whose argmax logit matches the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float32 {
	n, c := logits.Dim(0), logits.Dim(1)
	ld := logits.Data()
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	return float32(correct) / float32(n)
}

package train

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
)

func TestStepLRValidation(t *testing.T) {
	opt := NewSGD(SGDConfig{LR: 1})
	if _, err := NewStepLR(StepLRConfig{StepSize: 0, Gamma: 0.5}, opt); err == nil {
		t.Fatal("expected error for step size 0")
	}
	if _, err := NewStepLR(StepLRConfig{StepSize: 2, Gamma: 0}, opt); err == nil {
		t.Fatal("expected error for gamma 0")
	}
}

func TestStepLRDecay(t *testing.T) {
	opt := NewSGD(SGDConfig{LR: 1})
	s, err := NewStepLR(StepLRConfig{StepSize: 2, Gamma: 0.5}, opt)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 0.5, 0.5, 0.25, 0.25} // after epochs 1..5
	for i, w := range want {
		s.Step(opt)
		if math.Abs(float64(opt.Config.LR-w)) > 1e-7 {
			t.Fatalf("after epoch %d: lr = %v, want %v", i+1, opt.Config.LR, w)
		}
	}
	if s.EpochCount() != 5 {
		t.Fatalf("epoch count = %d", s.EpochCount())
	}
}

func TestStepLRStateRoundTrip(t *testing.T) {
	opt := NewSGD(SGDConfig{LR: 1})
	s, _ := NewStepLR(StepLRConfig{StepSize: 2, Gamma: 0.5}, opt)
	for i := 0; i < 3; i++ {
		s.Step(opt)
	}
	b, err := s.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a scheduler created against an already-decayed
	// optimizer; the restored base LR keeps the schedule aligned.
	s2, _ := NewStepLR(StepLRConfig{StepSize: 2, Gamma: 0.5}, opt)
	if err := s2.UnmarshalState(b); err != nil {
		t.Fatal(err)
	}
	if s2.EpochCount() != 3 {
		t.Fatalf("restored epoch count = %d", s2.EpochCount())
	}
	s.Step(opt)
	lrAfter := opt.Config.LR
	opt2 := NewSGD(SGDConfig{LR: 999}) // wrong LR; schedule must fix it
	s2.Step(opt2)
	if opt2.Config.LR != lrAfter {
		t.Fatalf("restored schedule diverged: %v vs %v", opt2.Config.LR, lrAfter)
	}
	if err := s2.UnmarshalState([]byte("junk")); err == nil {
		t.Fatal("expected error for bad state")
	}
}

// Provenance round trip with a scheduler: the restored service must resume
// the learning-rate schedule, and a reproduced training must match the
// original bit-for-bit.
func TestServiceWithSchedulerReproduces(t *testing.T) {
	ds := testDataset(t)
	mk := func() *ImageClassifierTrainService {
		loader, err := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		opt := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
		svc := NewImageClassifierTrainService(ServiceConfig{Epochs: 4, Seed: 13, Deterministic: true}, loader, opt)
		sched, err := NewStepLR(StepLRConfig{StepSize: 2, Gamma: 0.1}, opt)
		if err != nil {
			t.Fatal(err)
		}
		svc.Scheduler = sched
		return svc
	}

	// Train a model; capture pre-training provenance.
	svc := mk()
	doc, _, _, err := svc.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := doc.Wrappers["scheduler"]; !ok {
		t.Fatal("scheduler wrapper missing from provenance document")
	}
	m1, _ := models.New(models.TinyCNNName, 4, 42)
	if _, err := svc.Train(m1); err != nil {
		t.Fatal(err)
	}
	// The schedule decayed the LR during training.
	if svc.Optimizer.Config.LR >= 0.1 {
		t.Fatalf("scheduler did not decay LR: %v", svc.Optimizer.Config.LR)
	}

	// Restore from the document and reproduce.
	restored, err := Restore(doc, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	rsvc := restored.(*ImageClassifierTrainService)
	if rsvc.Scheduler == nil {
		t.Fatal("scheduler not restored")
	}
	m2, _ := models.New(models.TinyCNNName, 4, 42)
	if _, err := restored.Train(m2); err != nil {
		t.Fatal(err)
	}
	if !nn.StateDictOf(m1).Equal(nn.StateDictOf(m2)) {
		t.Fatal("scheduler-driven training not reproduced")
	}
}

// A scheduler mid-schedule (non-zero epoch counter) must resume, not
// restart: this is why the scheduler state is part of the provenance.
func TestSchedulerMidScheduleProvenance(t *testing.T) {
	ds := testDataset(t)
	loader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: 3})
	opt := NewSGD(SGDConfig{LR: 0.1})
	svc := NewImageClassifierTrainService(ServiceConfig{Epochs: 2, Seed: 5, Deterministic: true}, loader, opt)
	sched, _ := NewStepLR(StepLRConfig{StepSize: 1, Gamma: 0.5}, opt)
	svc.Scheduler = sched

	// First training window advances the schedule.
	warm, _ := models.New(models.TinyCNNName, 4, 1)
	if _, err := svc.Train(warm); err != nil {
		t.Fatal(err)
	}
	if sched.EpochCount() != 2 {
		t.Fatalf("epoch count = %d", sched.EpochCount())
	}

	// Provenance captured now must reproduce the SECOND window exactly.
	doc, _, _, err := svc.Describe()
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := models.New(models.TinyCNNName, 4, 2)
	if _, err := svc.Train(m1); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(doc, ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := models.New(models.TinyCNNName, 4, 2)
	if _, err := restored.Train(m2); err != nil {
		t.Fatal(err)
	}
	if !nn.StateDictOf(m1).Equal(nn.StateDictOf(m2)) {
		t.Fatal("mid-schedule training not reproduced (scheduler state lost)")
	}
}

package train

import (
	"bytes"
	"io"
)

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

package train

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(dataset.Spec{Name: "t", Images: 32, H: 16, W: 16, Classes: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testService(t *testing.T, ds *dataset.Dataset, det bool) *ImageClassifierTrainService {
	t.Helper()
	loader, err := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opt := NewSGD(SGDConfig{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4})
	return NewImageClassifierTrainService(ServiceConfig{Epochs: 2, Seed: 13, Deterministic: det}, loader, opt)
}

func TestCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.Zeros(2, 4)
	loss, grad, err := CrossEntropy(logits, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(loss)-math.Log(4)) > 1e-5 {
		t.Fatalf("loss = %v, want ln(4)", loss)
	}
	// Gradient: softmax(0.25) - onehot, averaged over batch.
	if math.Abs(float64(grad.At(0, 0))-(0.25-1)/2) > 1e-5 {
		t.Fatalf("grad[0,0] = %v", grad.At(0, 0))
	}
	if math.Abs(float64(grad.At(0, 1))-0.25/2) > 1e-5 {
		t.Fatalf("grad[0,1] = %v", grad.At(0, 1))
	}
	// Gradients per row sum to ~0.
	var s float64
	for j := 0; j < 4; j++ {
		s += float64(grad.At(1, j))
	}
	if math.Abs(s) > 1e-6 {
		t.Fatalf("grad row sum = %v", s)
	}
}

func TestCrossEntropyGradientNumeric(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.Normal(rng, 0, 2, 3, 5)
	labels := []int{1, 4, 0}
	_, grad, err := CrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	eps := float32(1e-2)
	for i := 0; i < logits.Len(); i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		up, _, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig - eps
		down, _, _ := CrossEntropy(logits, labels)
		logits.Data()[i] = orig
		num := (up - down) / (2 * eps)
		if d := math.Abs(float64(num - grad.Data()[i])); d > 1e-3 {
			t.Fatalf("grad[%d]: analytic %v numeric %v", i, grad.Data()[i], num)
		}
	}
}

func TestCrossEntropyBadInputs(t *testing.T) {
	for name, tc := range map[string]struct {
		logits *tensor.Tensor
		labels []int
	}{
		"label count mismatch": {tensor.Zeros(2, 3), []int{0}},
		"label out of range":   {tensor.Zeros(2, 3), []int{0, 3}},
		"non-2D logits":        {tensor.Zeros(6), []int{0}},
	} {
		if _, _, err := CrossEntropy(tc.logits, tc.labels); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.New([]float32{
		1, 2, 0,
		5, 1, 1,
	}, 2, 3)
	if a := Accuracy(logits, []int{1, 0}); a != 1 {
		t.Fatalf("accuracy = %v", a)
	}
	if a := Accuracy(logits, []int{0, 0}); a != 0.5 {
		t.Fatalf("accuracy = %v", a)
	}
}

func TestSGDStepBasics(t *testing.T) {
	l := nn.NewLinear(2, 1)
	copy(l.Weight.Value.Data(), []float32{1, 1})
	l.Weight.Grad.Data()[0] = 1
	opt := NewSGD(SGDConfig{LR: 0.1})
	opt.Step(l)
	if got := l.Weight.Value.Data()[0]; math.Abs(float64(got)-0.9) > 1e-6 {
		t.Fatalf("weight = %v, want 0.9", got)
	}
	// Untouched weight stays.
	if l.Weight.Value.Data()[1] != 1 {
		t.Fatal("zero-grad weight moved")
	}
}

func TestSGDRespectsTrainableFlag(t *testing.T) {
	l := nn.NewLinear(2, 1)
	l.Weight.Grad.Fill(1)
	l.Bias.Grad.Fill(1)
	nn.FreezeAllExcept(l, "bias")
	before := l.Weight.Value.Clone()
	NewSGD(SGDConfig{LR: 0.5}).Step(l)
	if !l.Weight.Value.Equal(before) {
		t.Fatal("frozen weight was updated")
	}
	if l.Bias.Value.Data()[0] == 0 {
		// bias started at 0 and must have moved by -0.5.
		t.Log("ok")
	}
	if math.Abs(float64(l.Bias.Value.Data()[0])+0.5) > 1e-6 {
		t.Fatalf("bias = %v, want -0.5", l.Bias.Value.Data()[0])
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	l := nn.NewLinear(1, 1)
	opt := NewSGD(SGDConfig{LR: 1, Momentum: 0.5})
	l.Weight.Grad.Fill(1)
	opt.Step(l) // v=1, w=-1
	l.Weight.Grad.Fill(1)
	opt.Step(l) // v=1.5, w=-2.5
	if got := l.Weight.Value.Data()[0]; math.Abs(float64(got)+2.5) > 1e-6 {
		t.Fatalf("weight = %v, want -2.5", got)
	}
	if !opt.HasState() {
		t.Fatal("momentum optimizer should have state")
	}
}

func TestSGDStateRoundTrip(t *testing.T) {
	l := nn.NewLinear(2, 2)
	opt := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
	l.Weight.Grad.Fill(0.5)
	l.Bias.Grad.Fill(0.25)
	opt.Step(l)

	var buf bytes.Buffer
	if _, err := opt.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	opt2 := NewSGD(opt.Config)
	if err := opt2.ReadState(&buf); err != nil {
		t.Fatal(err)
	}
	if !opt.StateEqual(opt2) {
		t.Fatal("state round trip not equal")
	}
	// Continuing training from restored state matches continuing original.
	l2 := nn.NewLinear(2, 2)
	copy(l2.Weight.Value.Data(), l.Weight.Value.Data())
	copy(l2.Bias.Value.Data(), l.Bias.Value.Data())
	l.Weight.Grad.Fill(0.5)
	l2.Weight.Grad.Fill(0.5)
	opt.Step(l)
	opt2.Step(l2)
	if !l.Weight.Value.Equal(l2.Weight.Value) {
		t.Fatal("restored optimizer diverged")
	}
}

func TestSGDReadStateRejectsGarbage(t *testing.T) {
	opt := NewSGD(SGDConfig{})
	if err := opt.ReadState(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected error")
	}
}

func TestDataLoaderValidation(t *testing.T) {
	ds := testDataset(t)
	if _, err := NewDataLoader(ds, LoaderConfig{BatchSize: 0, OutH: 8, OutW: 8}); err == nil {
		t.Fatal("expected error for batch size 0")
	}
	if _, err := NewDataLoader(ds, LoaderConfig{BatchSize: 4, OutH: 0, OutW: 8}); err == nil {
		t.Fatal("expected error for bad output size")
	}
}

func TestDataLoaderBatching(t *testing.T) {
	ds := testDataset(t)
	loader, err := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8, Shuffle: false})
	if err != nil {
		t.Fatal(err)
	}
	if loader.NumBatches() != 4 {
		t.Fatalf("NumBatches = %d", loader.NumBatches())
	}
	b, err := loader.Batch(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.X.Dim(0) != 8 || b.X.Dim(1) != 3 || b.X.Dim(2) != 8 {
		t.Fatalf("batch shape %v", b.X.Shape())
	}
	// Without shuffle, batch 0 holds images 0..7 in order.
	if b.Labels[0] != ds.Label(0) || b.Labels[7] != ds.Label(7) {
		t.Fatal("sequential order broken")
	}
}

func TestDataLoaderShuffleDeterministic(t *testing.T) {
	ds := testDataset(t)
	cfg := LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8, Shuffle: true, Seed: 5}
	a, _ := NewDataLoader(ds, cfg)
	b, _ := NewDataLoader(ds, cfg)
	mustBatch := func(l *DataLoader, epoch, idx int) Batch {
		t.Helper()
		bt, err := l.Batch(epoch, idx)
		if err != nil {
			t.Fatal(err)
		}
		return bt
	}
	ba, bb := mustBatch(a, 1, 2), mustBatch(b, 1, 2)
	if !ba.X.Equal(bb.X) {
		t.Fatal("same seed loaders must produce identical batches")
	}
	// Different epochs give different orders.
	if mustBatch(a, 0, 0).X.Equal(mustBatch(a, 1, 0).X) {
		t.Fatal("epochs should shuffle differently")
	}
	// Shuffled differs from sequential.
	seq, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8, Shuffle: false})
	if mustBatch(a, 0, 0).X.Equal(mustBatch(seq, 0, 0).X) {
		t.Fatal("shuffle appears to be identity")
	}
}

func TestDataLoaderBatchOutOfRange(t *testing.T) {
	ds := testDataset(t)
	loader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8})
	if _, err := loader.Batch(0, 99); err == nil {
		t.Fatal("expected error for out-of-range batch")
	}
	if _, err := loader.Batch(0, -1); err == nil {
		t.Fatal("expected error for negative batch")
	}
}

func TestDeterministicTrainingIsReproducible(t *testing.T) {
	ds := testDataset(t)
	run := func() *nn.StateDict {
		m, err := models.New(models.TinyCNNName, 4, 42)
		if err != nil {
			t.Fatal(err)
		}
		svc := testService(t, ds, true)
		if _, err := svc.Train(m); err != nil {
			t.Fatal(err)
		}
		return nn.StateDictOf(m).Clone()
	}
	a, b := run(), run()
	if !a.Equal(b) {
		t.Fatal("deterministic training must be bit-reproducible")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	ds := testDataset(t)
	m, err := models.New(models.TinyCNNName, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	loader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: 3})
	opt := NewSGD(SGDConfig{LR: 0.1, Momentum: 0.9})
	svc := NewImageClassifierTrainService(ServiceConfig{Epochs: 8, Seed: 2, Deterministic: true}, loader, opt)
	stats, err := svc.Train(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Losses) != 8 {
		t.Fatalf("losses = %v", stats.Losses)
	}
	if stats.Losses[7] >= stats.Losses[0] {
		t.Fatalf("loss did not decrease: %v", stats.Losses)
	}
	if stats.Batches != 8*4 {
		t.Fatalf("batches = %d", stats.Batches)
	}
	if stats.TotalTime() <= 0 {
		t.Fatal("no time recorded")
	}
	if stats.ForwardTime <= 0 || stats.BackwardTime <= 0 || stats.LoadTime <= 0 {
		t.Fatalf("time buckets missing: %+v", stats)
	}
}

func TestTrainRejectsBadConfig(t *testing.T) {
	ds := testDataset(t)
	m, _ := models.New(models.TinyCNNName, 4, 1)
	loader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8})
	svc := NewImageClassifierTrainService(ServiceConfig{Epochs: 0}, loader, NewSGD(SGDConfig{LR: 0.1}))
	if _, err := svc.Train(m); err == nil {
		t.Fatal("expected error for 0 epochs")
	}
	// Batch size bigger than the dataset yields no full batch.
	bigLoader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 64, OutH: 8, OutW: 8})
	svc2 := NewImageClassifierTrainService(ServiceConfig{Epochs: 1}, bigLoader, NewSGD(SGDConfig{LR: 0.1}))
	if _, err := svc2.Train(m); err == nil {
		t.Fatal("expected error for empty epoch")
	}
}

func TestBatchesPerEpochLimit(t *testing.T) {
	ds := testDataset(t)
	m, _ := models.New(models.TinyCNNName, 4, 1)
	loader, _ := NewDataLoader(ds, LoaderConfig{BatchSize: 8, OutH: 8, OutW: 8})
	svc := NewImageClassifierTrainService(ServiceConfig{Epochs: 2, BatchesPerEpoch: 2, Seed: 1, Deterministic: true}, loader, NewSGD(SGDConfig{LR: 0.1}))
	stats, err := svc.Train(m)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batches != 4 {
		t.Fatalf("batches = %d, want 4 (2 epochs × 2 batches, the paper's simulated training)", stats.Batches)
	}
}

func TestDescribeRestoreRoundTrip(t *testing.T) {
	ds := testDataset(t)
	svc := testService(t, ds, true)

	// Give the optimizer some state first.
	m, _ := models.New(models.TinyCNNName, 4, 42)
	if _, err := svc.Train(m); err != nil {
		t.Fatal(err)
	}

	doc, opt, gotDS, err := svc.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if doc.ClassName != ServiceClassName {
		t.Fatalf("class = %q", doc.ClassName)
	}
	if gotDS != ds {
		t.Fatal("Describe returned wrong dataset")
	}
	if _, ok := doc.Wrappers["dataloader"]; !ok {
		t.Fatal("missing dataloader wrapper")
	}
	if _, ok := doc.Wrappers["optimizer"]; !ok {
		t.Fatal("missing optimizer wrapper")
	}

	var stateBuf bytes.Buffer
	if _, err := opt.WriteState(&stateBuf); err != nil {
		t.Fatal(err)
	}

	// The document must survive JSON round trips (it is stored in docdb).
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var doc2 ServiceDoc
	if err := json.Unmarshal(raw, &doc2); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(doc2, ds, stateBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	rsvc := restored.(*ImageClassifierTrainService)
	if rsvc.Config != svc.Config {
		t.Fatalf("config round trip: %+v vs %+v", rsvc.Config, svc.Config)
	}
	if rsvc.Loader.Config != svc.Loader.Config {
		t.Fatalf("loader config round trip: %+v vs %+v", rsvc.Loader.Config, svc.Loader.Config)
	}
	if !rsvc.Optimizer.StateEqual(svc.Optimizer) {
		t.Fatal("optimizer state not restored")
	}

	// Restored service reproduces training exactly: train two equal models.
	m1, _ := models.New(models.TinyCNNName, 4, 99)
	m2, _ := models.New(models.TinyCNNName, 4, 99)
	if _, err := svc.Train(m1); err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Train(m2); err != nil {
		t.Fatal(err)
	}
	if !nn.StateDictOf(m1).Equal(nn.StateDictOf(m2)) {
		t.Fatal("restored service did not reproduce training")
	}
}

func TestRestoreErrors(t *testing.T) {
	ds := testDataset(t)
	if _, err := Restore(ServiceDoc{ClassName: "Unknown"}, ds, nil); err == nil {
		t.Fatal("expected error for unknown class")
	}
	doc := ServiceDoc{ClassName: ServiceClassName, Config: json.RawMessage(`{}`), Wrappers: map[string]WrapperDoc{}}
	if _, err := Restore(doc, ds, nil); err == nil {
		t.Fatal("expected error for missing wrappers")
	}
	doc.Wrappers["dataloader"] = WrapperDoc{ClassName: "DataLoader", Config: json.RawMessage(`{"batch_size":4,"out_h":8,"out_w":8}`)}
	if _, err := Restore(doc, ds, nil); err == nil {
		t.Fatal("expected error for missing optimizer")
	}
	doc.Wrappers["optimizer"] = WrapperDoc{ClassName: "SGD", Config: json.RawMessage(`{"lr":0.1}`)}
	if _, err := Restore(doc, ds, []byte("garbage state")); err == nil {
		t.Fatal("expected error for bad optimizer state")
	}
	if _, err := Restore(doc, ds, nil); err != nil {
		t.Fatalf("valid doc failed: %v", err)
	}
}

package train

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Service is the paper's TrainService interface: "Every TrainService
// defines the logic to train a given model in its train method and
// references all objects that are relevant for it wrapped in wrapper
// objects."
type Service interface {
	// Train updates m in place and returns timing/loss statistics.
	Train(m nn.Module) (Stats, error)
	// Describe serializes the service for provenance storage.
	Describe() (ServiceDoc, *SGD, *dataset.Dataset, error)
}

// Stats reports what happened during a training run. The three time buckets
// are the split of the paper's Figure 13: time to prepare input batches
// ("load data to the GPU" in the paper's setting), forward pass, and
// backward pass. Optimizer steps are reported separately.
type Stats struct {
	Epochs       int
	Batches      int
	LoadTime     time.Duration
	ForwardTime  time.Duration
	BackwardTime time.Duration
	StepTime     time.Duration
	// Losses holds the mean loss of each epoch.
	Losses []float32
	// FinalLoss is the last batch's loss.
	FinalLoss float32
}

// TotalTime returns the sum of all time buckets.
func (s Stats) TotalTime() time.Duration {
	return s.LoadTime + s.ForwardTime + s.BackwardTime + s.StepTime
}

// ServiceConfig holds the hyperparameters of an ImageClassifierTrainService
// — the "overall training logic" configuration of Section 3.3.
type ServiceConfig struct {
	Epochs          int    `json:"epochs"`
	BatchesPerEpoch int    `json:"batches_per_epoch"` // 0 = all full batches
	Seed            uint64 `json:"seed"`
	Deterministic   bool   `json:"deterministic"`
}

// ImageClassifierTrainService trains an image classifier with SGD and
// cross-entropy — the Go analogue of the paper's ImageNetTrainService
// (Figure 5). It references a stateless dataloader wrapper and a stateful
// optimizer wrapper.
type ImageClassifierTrainService struct {
	Config    ServiceConfig
	Loader    *DataLoader
	Optimizer *SGD
	// Scheduler optionally decays the learning rate per epoch. It is a
	// second stateful wrapped object: its state is captured with the
	// provenance so reproduced trainings resume the schedule correctly.
	Scheduler *StepLR
}

// ServiceClassName identifies the service class in provenance documents.
const ServiceClassName = "ImageClassifierTrainService"

// NewImageClassifierTrainService assembles a training service.
func NewImageClassifierTrainService(cfg ServiceConfig, loader *DataLoader, opt *SGD) *ImageClassifierTrainService {
	return &ImageClassifierTrainService{Config: cfg, Loader: loader, Optimizer: opt}
}

// Train implements Service. Given the same initial model state, dataset,
// configuration, and seeds, a deterministic run reproduces the exact same
// updated model — the property the model provenance approach relies on.
func (s *ImageClassifierTrainService) Train(m nn.Module) (Stats, error) {
	if s.Config.Epochs <= 0 {
		return Stats{}, fmt.Errorf("train: %d epochs", s.Config.Epochs)
	}
	mode := tensor.Parallel
	if s.Config.Deterministic {
		mode = tensor.Deterministic
	}
	ctx := &nn.Context{Training: true, Mode: mode, RNG: tensor.NewRNG(s.Config.Seed)}

	var st Stats
	st.Epochs = s.Config.Epochs
	batches := s.Loader.NumBatches()
	if s.Config.BatchesPerEpoch > 0 && s.Config.BatchesPerEpoch < batches {
		batches = s.Config.BatchesPerEpoch
	}
	if batches == 0 {
		return Stats{}, fmt.Errorf("train: dataset of %d images yields no full batch of %d",
			s.Loader.Dataset.Len(), s.Loader.Config.BatchSize)
	}

	for epoch := 0; epoch < s.Config.Epochs; epoch++ {
		var epochLoss float64
		for b := 0; b < batches; b++ {
			t0 := time.Now()
			batch, err := s.Loader.Batch(epoch, b)
			if err != nil {
				return Stats{}, err
			}
			t1 := time.Now()
			logits := m.Forward(ctx, batch.X)
			t2 := time.Now()
			loss, grad, err := CrossEntropy(logits, batch.Labels)
			if err != nil {
				return Stats{}, err
			}
			nn.ZeroGrads(m)
			m.Backward(ctx, grad)
			t3 := time.Now()
			s.Optimizer.Step(m)
			t4 := time.Now()

			st.LoadTime += t1.Sub(t0)
			st.ForwardTime += t2.Sub(t1)
			st.BackwardTime += t3.Sub(t2)
			st.StepTime += t4.Sub(t3)
			st.FinalLoss = loss
			epochLoss += float64(loss)
			st.Batches++
		}
		st.Losses = append(st.Losses, float32(epochLoss/float64(batches)))
		if s.Scheduler != nil {
			s.Scheduler.Step(s.Optimizer)
		}
	}
	return st, nil
}

// WrapperDoc is the serialized form of a wrapper object (Section 3.3): the
// wrapped object's class name, import location, constructor arguments, and
// — for stateful objects — a reference to a state file.
type WrapperDoc struct {
	ClassName string          `json:"class_name"`
	Import    string          `json:"import"`
	Config    json.RawMessage `json:"config"`
	// StateFileRef references the state file in the file store; empty for
	// stateless objects. The reference is filled in by the save service.
	StateFileRef string `json:"state_file_ref,omitempty"`
	// StateFileHash is the content hash of the state file, recorded by the
	// save service from the hash the file store computes while writing.
	StateFileHash string `json:"state_file_hash,omitempty"`
	// StateInline embeds small internal state directly in the document
	// instead of a separate state file (an optimization for states of a
	// few bytes, like a scheduler's epoch counter).
	StateInline json.RawMessage `json:"state_inline,omitempty"`
	// Refs names other wrapped objects this object's constructor receives.
	Refs map[string]string `json:"refs,omitempty"`
}

// ServiceDoc is the serialized form of a TrainService: its class name, its
// hyperparameter configuration, and its wrapped objects. The dataset
// reference is filled in by the save service that archives the dataset.
type ServiceDoc struct {
	ClassName  string                `json:"class_name"`
	Config     json.RawMessage       `json:"config"`
	Wrappers   map[string]WrapperDoc `json:"wrappers"`
	DatasetRef string                `json:"dataset_ref,omitempty"`
}

// Describe implements Service. It returns the provenance document together
// with the live optimizer (whose state the caller persists to a state file)
// and the dataset (which the caller archives).
func (s *ImageClassifierTrainService) Describe() (ServiceDoc, *SGD, *dataset.Dataset, error) {
	cfg, err := json.Marshal(s.Config)
	if err != nil {
		return ServiceDoc{}, nil, nil, err
	}
	loaderCfg, err := s.Loader.MarshalConfig()
	if err != nil {
		return ServiceDoc{}, nil, nil, err
	}
	optCfg, err := s.Optimizer.MarshalConfig()
	if err != nil {
		return ServiceDoc{}, nil, nil, err
	}
	doc := ServiceDoc{
		ClassName: ServiceClassName,
		Config:    cfg,
		Wrappers: map[string]WrapperDoc{
			"dataloader": {
				ClassName: "DataLoader",
				Import:    "repro/internal/train",
				Config:    loaderCfg,
				Refs:      map[string]string{"dataset": "dataset_ref"},
			},
			"optimizer": {
				ClassName: "SGD",
				Import:    "repro/internal/train",
				Config:    optCfg,
			},
		},
	}
	if s.Scheduler != nil {
		schedCfg, err := s.Scheduler.MarshalConfig()
		if err != nil {
			return ServiceDoc{}, nil, nil, err
		}
		state, err := s.Scheduler.MarshalState()
		if err != nil {
			return ServiceDoc{}, nil, nil, err
		}
		doc.Wrappers["scheduler"] = WrapperDoc{
			ClassName:   "StepLR",
			Import:      "repro/internal/train",
			Config:      schedCfg,
			StateInline: state,
			Refs:        map[string]string{"optimizer": "optimizer"},
		}
	}
	return doc, s.Optimizer, s.Loader.Dataset, nil
}

// Restore rebuilds a service from its provenance document, the recovered
// dataset, and the optimizer state bytes (nil when the optimizer had no
// accumulated state).
func Restore(doc ServiceDoc, ds *dataset.Dataset, optState []byte) (Service, error) {
	if doc.ClassName != ServiceClassName {
		return nil, fmt.Errorf("train: unknown service class %q", doc.ClassName)
	}
	var cfg ServiceConfig
	if err := json.Unmarshal(doc.Config, &cfg); err != nil {
		return nil, fmt.Errorf("train: decoding service config: %w", err)
	}
	lw, ok := doc.Wrappers["dataloader"]
	if !ok {
		return nil, fmt.Errorf("train: provenance document missing dataloader wrapper")
	}
	var lcfg LoaderConfig
	if err := json.Unmarshal(lw.Config, &lcfg); err != nil {
		return nil, fmt.Errorf("train: decoding loader config: %w", err)
	}
	loader, err := NewDataLoader(ds, lcfg)
	if err != nil {
		return nil, err
	}
	ow, ok := doc.Wrappers["optimizer"]
	if !ok {
		return nil, fmt.Errorf("train: provenance document missing optimizer wrapper")
	}
	var ocfg SGDConfig
	if err := json.Unmarshal(ow.Config, &ocfg); err != nil {
		return nil, fmt.Errorf("train: decoding optimizer config: %w", err)
	}
	opt := NewSGD(ocfg)
	if len(optState) > 0 {
		if err := opt.ReadState(bytesReader(optState)); err != nil {
			return nil, err
		}
	}
	svc := NewImageClassifierTrainService(cfg, loader, opt)
	if sw, ok := doc.Wrappers["scheduler"]; ok {
		var scfg StepLRConfig
		if err := json.Unmarshal(sw.Config, &scfg); err != nil {
			return nil, fmt.Errorf("train: decoding scheduler config: %w", err)
		}
		sched, err := NewStepLR(scfg, opt)
		if err != nil {
			return nil, err
		}
		if len(sw.StateInline) > 0 {
			if err := sched.UnmarshalState(sw.StateInline); err != nil {
				return nil, err
			}
		}
		svc.Scheduler = sched
	}
	return svc, nil
}

package train

import (
	"encoding/json"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// LoaderConfig holds the constructor arguments of a DataLoader. It is the
// wrapper-object configuration of the paper's stateless parametrized
// objects: a dataloader is fully reconstructed from these arguments plus a
// dataset reference.
type LoaderConfig struct {
	BatchSize int    `json:"batch_size"`
	OutH      int    `json:"out_h"`
	OutW      int    `json:"out_w"`
	Shuffle   bool   `json:"shuffle"`
	Seed      uint64 `json:"seed"`
}

// DataLoader batches a dataset into input tensors and labels. It has no
// internal state: iteration order for any epoch is a pure function of the
// configuration, so the same loader configuration over the same dataset
// yields identical batches — a requirement for reproducing model training.
type DataLoader struct {
	Config  LoaderConfig
	Dataset *dataset.Dataset
}

// NewDataLoader creates a loader over ds.
func NewDataLoader(ds *dataset.Dataset, cfg LoaderConfig) (*DataLoader, error) {
	if cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("train: batch size %d", cfg.BatchSize)
	}
	if cfg.OutH <= 0 || cfg.OutW <= 0 {
		return nil, fmt.Errorf("train: output size %dx%d", cfg.OutH, cfg.OutW)
	}
	return &DataLoader{Config: cfg, Dataset: ds}, nil
}

// Batch is one mini-batch of decoded images and labels.
type Batch struct {
	// X is [B, 3, OutH, OutW] in [0, 1].
	X *tensor.Tensor
	// Labels holds the class index of each sample.
	Labels []int
}

// NumBatches returns the number of full batches per epoch. A trailing
// partial batch is dropped (like PyTorch's drop_last), keeping every batch
// shape identical and epochs reproducible.
func (l *DataLoader) NumBatches() int {
	return l.Dataset.Len() / l.Config.BatchSize
}

// order returns the deterministic sample order for an epoch.
func (l *DataLoader) order(epoch int) []int {
	n := l.Dataset.Len()
	if !l.Config.Shuffle {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	rng := tensor.NewRNG(l.Config.Seed + uint64(epoch)*0x9e3779b97f4a7c15)
	return rng.Perm(n)
}

// Batch materializes batch b of the given epoch. Requesting a batch index
// outside [0, NumBatches()) is an error.
func (l *DataLoader) Batch(epoch, b int) (Batch, error) {
	bs := l.Config.BatchSize
	if b < 0 || b >= l.NumBatches() {
		return Batch{}, fmt.Errorf("train: batch %d out of range [0,%d)", b, l.NumBatches())
	}
	ord := l.order(epoch)
	x := tensor.Zeros(bs, 3, l.Config.OutH, l.Config.OutW)
	labels := make([]int, bs)
	per := 3 * l.Config.OutH * l.Config.OutW
	for i := 0; i < bs; i++ {
		idx := ord[b*bs+i]
		img := l.Dataset.Image(idx, l.Config.OutH, l.Config.OutW)
		copy(x.Data()[i*per:(i+1)*per], img.Data())
		labels[i] = l.Dataset.Label(idx)
	}
	return Batch{X: x, Labels: labels}, nil
}

// MarshalConfig encodes the constructor arguments as JSON.
func (l *DataLoader) MarshalConfig() (json.RawMessage, error) {
	return json.Marshal(l.Config)
}

// Package train implements the training substrate of the reproduction: the
// SGD optimizer (a stateful parametrized object in the paper's wrapper
// terminology), the dataloader (a stateless parametrized object), the
// cross-entropy loss, and the TrainService abstraction whose serialized
// form is the core of the model provenance approach (Section 3.3).
package train

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// SGDConfig holds the constructor arguments of the SGD optimizer — the
// "initialization arguments" its wrapper object records.
type SGDConfig struct {
	LR          float32 `json:"lr"`
	Momentum    float32 `json:"momentum"`
	WeightDecay float32 `json:"weight_decay"`
	// ClipNorm rescales the global gradient norm to at most this value
	// before the update when > 0, keeping early high-LR training on
	// random-init models from diverging. The clipping norm is computed in
	// a fixed serial order, so clipped training stays reproducible.
	ClipNorm float32 `json:"clip_norm,omitempty"`
}

// clipGradients rescales all trainable gradients so their global L2 norm is
// at most maxNorm. The norm accumulates in float64 in state-dict order.
func clipGradients(m nn.Module, maxNorm float32) {
	var sq float64
	params := nn.NamedParams(m)
	for _, p := range params {
		if !p.Param.Trainable {
			continue
		}
		for _, g := range p.Param.Grad.Data() {
			sq += float64(g) * float64(g)
		}
	}
	norm := float32(math.Sqrt(sq))
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		if !p.Param.Trainable {
			continue
		}
		g := p.Param.Grad.Data()
		for i := range g {
			g[i] *= scale
		}
	}
}

// SGD implements stochastic gradient descent with momentum and weight
// decay. The momentum velocities are internal state that cannot be
// recovered from the constructor arguments alone, making SGD the paper's
// canonical example of a wrapped object with a state file.
type SGD struct {
	Config SGDConfig
	// velocities maps parameter paths to momentum buffers.
	velocities map[string]*tensor.Tensor
}

// NewSGD creates an optimizer from its configuration.
func NewSGD(cfg SGDConfig) *SGD {
	return &SGD{Config: cfg, velocities: make(map[string]*tensor.Tensor)}
}

// Step applies one update to every trainable parameter of m using the
// accumulated gradients. Parameters are visited in deterministic state-dict
// order so updates are reproducible.
func (s *SGD) Step(m nn.Module) {
	if s.Config.ClipNorm > 0 {
		clipGradients(m, s.Config.ClipNorm)
	}
	for _, p := range nn.NamedParams(m) {
		if !p.Param.Trainable {
			continue
		}
		w := p.Param.Value.Data()
		g := p.Param.Grad.Data()
		if s.Config.WeightDecay != 0 {
			wd := s.Config.WeightDecay
			for i := range g {
				g[i] += wd * w[i]
			}
		}
		if s.Config.Momentum != 0 {
			v, ok := s.velocities[p.Path]
			if !ok {
				v = tensor.Zeros(p.Param.Value.Shape()...)
				s.velocities[p.Path] = v
			}
			vd := v.Data()
			mom := s.Config.Momentum
			lr := s.Config.LR
			for i := range g {
				vd[i] = mom*vd[i] + g[i]
				w[i] -= lr * vd[i]
			}
		} else {
			lr := s.Config.LR
			for i := range g {
				w[i] -= lr * g[i]
			}
		}
	}
}

// HasState reports whether the optimizer has accumulated internal state.
func (s *SGD) HasState() bool { return len(s.velocities) > 0 }

// WriteState serializes the momentum buffers. The resulting bytes are the
// wrapper object's "state file".
func (s *SGD) WriteState(w io.Writer) (int64, error) {
	sd := nn.NewStateDict()
	// Deterministic order: sort keys via a temporary index.
	keys := make([]string, 0, len(s.velocities))
	for k := range s.velocities {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sd.Set(k, s.velocities[k])
	}
	return sd.WriteTo(w)
}

// ReadState restores momentum buffers previously written with WriteState.
func (s *SGD) ReadState(r io.Reader) error {
	sd, err := nn.ReadStateDict(r)
	if err != nil {
		return fmt.Errorf("train: reading optimizer state: %w", err)
	}
	s.velocities = make(map[string]*tensor.Tensor, sd.Len())
	for _, e := range sd.Entries() {
		s.velocities[e.Key] = e.Tensor
	}
	return nil
}

// StateEqual reports whether two optimizers have bit-identical state.
func (s *SGD) StateEqual(o *SGD) bool {
	if len(s.velocities) != len(o.velocities) {
		return false
	}
	for k, v := range s.velocities {
		ov, ok := o.velocities[k]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// MarshalConfig encodes the constructor arguments as JSON.
func (s *SGD) MarshalConfig() (json.RawMessage, error) {
	return json.Marshal(s.Config)
}

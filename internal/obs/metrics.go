// Package obs is the repository's observability substrate: a
// concurrency-safe metrics registry (counters, gauges, bounded histograms
// with percentile snapshots), a lightweight span tracer propagated through
// context.Context that emits Chrome trace-event JSON, a small leveled
// logger for the binaries, and an HTTP debug surface (/metrics, /healthz,
// /debug/pprof). It is pure standard library and imports nothing from the
// rest of the module, so every layer — tensor hashing, the docdb wire, the
// file store, the recovery pipelines, the serving tier — can report into
// one registry without dependency cycles.
//
// The paper's whole evaluation is built on measuring save and recovery
// cost; obs is the substrate that makes those measurements available from
// a *running* system, not only from benchmark harnesses.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; an increment is a single atomic add, cheap enough for
// per-tensor hot paths.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (live connections, cache
// occupancy). All methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket layout: values 0..histSub-1 get exact unit buckets;
// above that, each power of two is split into histSub log-linear
// sub-buckets, so the relative quantization error is bounded by
// 1/histSub (~3.1%) at any magnitude. 64-bit values need at most
// (64-histSubBits+1)*histSub buckets — under 2000 atomic counters
// (~15 KB) per histogram, a fixed bound no matter what is observed.
const (
	histSubBits = 5
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits + 1) * histSub
)

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < histSub {
		return int(u)
	}
	exp := bits.Len64(u) - 1 - histSubBits
	idx := int(u>>uint(exp)) - histSub
	return (exp+1)*histSub + idx
}

// bucketMid returns a representative value for bucket b: the midpoint of
// the bucket's range, which bounds the percentile estimation error to half
// the bucket width.
func bucketMid(b int) int64 {
	if b < histSub {
		return int64(b)
	}
	exp := uint(b/histSub - 1)
	idx := int64(b % histSub)
	lo := (int64(histSub) + idx) << exp
	width := int64(1) << exp
	return lo + width/2
}

// Histogram records a distribution of int64 observations (the repo's
// convention: durations in microseconds, sizes in bytes) in a fixed set of
// log-linear buckets. Observations and snapshots are safe for concurrent
// use and never allocate.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 while empty
	max     atomic.Int64 // math.MinInt64 while empty
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value (negative values are clamped to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records d in microseconds, the repo's convention for
// latency histograms (suffix "_us").
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Microseconds())
}

// HistogramSnapshot is a point-in-time summary of a histogram. Percentiles
// are estimated from the bucket midpoints, accurate to ~1/32 relative
// error.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram. Concurrent observations may land
// between the bucket reads; the snapshot is a consistent-enough view for
// reporting, not a linearizable cut.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	s.Min, s.Max = h.min.Load(), h.max.Load()
	// One ordered pass over the buckets serves all three percentile ranks.
	targets := [3]int64{
		rank(s.Count, 0.50),
		rank(s.Count, 0.95),
		rank(s.Count, 0.99),
	}
	out := [3]int64{}
	var seen int64
	ti := 0
	for b := 0; b < histBuckets && ti < len(targets); b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		seen += n
		for ti < len(targets) && seen >= targets[ti] {
			out[ti] = clampRange(bucketMid(b), s.Min, s.Max)
			ti++
		}
	}
	for ; ti < len(targets); ti++ {
		out[ti] = s.Max
	}
	s.P50, s.P95, s.P99 = out[0], out[1], out[2]
	return s
}

// rank converts a quantile to a 1-based rank over count observations.
func rank(count int64, q float64) int64 {
	r := int64(math.Ceil(q * float64(count)))
	if r < 1 {
		r = 1
	}
	if r > count {
		r = count
	}
	return r
}

func clampRange(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Registry holds named metrics. Metric handles are get-or-create: the
// first request for a name allocates it, later requests return the same
// handle, so hot paths resolve their handles once (package variable or
// struct field) and then touch only atomics.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry every instrumented layer
// reports into.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. It is a
// plain value: JSON-marshalable, comparable field by field, and detached
// from the live registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered metric. Metrics registered while the
// snapshot is being taken may or may not appear; values keep moving
// underneath (the registry is live), which is exactly what the race tests
// hammer.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	counters := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counters = append(counters, name)
	}
	gauges := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gauges = append(gauges, name)
	}
	hists := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hists = append(hists, name)
	}
	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, name := range counters {
		s.Counters[name] = r.counters[name].Value()
	}
	for _, name := range gauges {
		s.Gauges[name] = r.gauges[name].Value()
	}
	for _, name := range hists {
		s.Histograms[name] = r.hists[name].Snapshot()
	}
	r.mu.RUnlock()
	return s
}

// Delta returns this snapshot relative to an earlier one: counters and
// histogram count/sum are subtracted (a name missing from prev counts from
// zero), gauges and histogram min/max/percentiles keep their current
// values (they describe state, not flow, and percentiles of a difference
// are not derivable from two summaries).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for _, name := range sortedKeys(s.Counters) {
		d.Counters[name] = s.Counters[name] - prev.Counters[name]
	}
	for _, name := range sortedKeys(s.Gauges) {
		d.Gauges[name] = s.Gauges[name]
	}
	for name, h := range s.Histograms {
		p := prev.Histograms[name]
		h.Count -= p.Count
		h.Sum -= p.Sum
		d.Histograms[name] = h
	}
	return d
}

// sortedKeys returns m's keys in sorted order (the repo-wide determinism
// discipline for anything that might be persisted or compared).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as indented JSON. encoding/json emits map
// keys in sorted order, so the output is deterministic for a given
// snapshot.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding snapshot: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteProm writes the snapshot in the Prometheus text exposition format,
// metrics sorted by name. Histograms are exported as summaries (quantile
// labels plus _sum and _count).
func (s Snapshot) WriteProm(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w,
			"# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.95\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, pn, h.P50, pn, h.P95, pn, h.P99, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps the registry's dotted names onto the Prometheus metric
// name charset.
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

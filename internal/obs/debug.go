package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// DebugHandler serves the live-introspection surface over reg:
//
//	/healthz            liveness probe ("ok")
//	/metrics            registry snapshot — JSON by default, Prometheus
//	                    text with ?format=prom or an Accept: text/plain
//	                    header
//	/debug/pprof/*      the standard runtime profiles
func DebugHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "prom" ||
			strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := snap.WriteProm(w); err != nil {
				Warnf("obs: writing prometheus metrics: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := snap.WriteJSON(w); err != nil {
			Warnf("obs: writing metrics snapshot: %v", err)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a running debug HTTP listener (see ServeDebug).
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the debug surface on addr (e.g. "localhost:6060") and
// returns once the listener is bound, so callers can immediately curl
// Addr().
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           DebugHandler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ds := &DebugServer{ln: ln, srv: srv}
	go func() {
		// http.Server.Serve always returns a non-nil error on Close;
		// nothing to report.
		_ = srv.Serve(ln)
	}()
	return ds, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the debug listener.
func (d *DebugServer) Close() error { return d.srv.Close() }

package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestStartSpanWithoutTracerIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "orphan")
	if sp != nil {
		t.Fatal("StartSpan without a tracer returned a live span")
	}
	if ctx2 != ctx {
		t.Fatal("StartSpan without a tracer should return ctx unchanged")
	}
	// All methods must be nil-safe.
	sp.Arg("k", "v")
	sp.End()
	if TracerFrom(ctx) != nil {
		t.Fatal("TracerFrom on a bare context should be nil")
	}
}

func TestSpanTreeNestingAndOrdering(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)

	// Build a known tree: root -> (a -> a1, b) and an independent root2.
	ctx1, root := StartSpan(ctx, "root")
	ctxA, a := StartSpan(ctx1, "a")
	_, a1 := StartSpan(ctxA, "a1")
	a1.End()
	a.End()
	_, b := StartSpan(ctx1, "b")
	b.Arg("model", "m-1")
	b.End()
	root.End()
	_, root2 := StartSpan(ctx, "root2")
	root2.End()

	recs := tr.Records()
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	r, a_, a1_, b_, r2 := byName["root"], byName["a"], byName["a1"], byName["b"], byName["root2"]

	// Parent links.
	if r.Parent != 0 || r2.Parent != 0 {
		t.Fatalf("roots must have Parent 0: root=%d root2=%d", r.Parent, r2.Parent)
	}
	if a_.Parent != r.ID || b_.Parent != r.ID || a1_.Parent != a_.ID {
		t.Fatalf("parent links wrong: a.Parent=%d b.Parent=%d a1.Parent=%d (root=%d a=%d)",
			a_.Parent, b_.Parent, a1_.Parent, r.ID, a_.ID)
	}
	// Root attribution (trace tid).
	for _, rec := range []SpanRecord{r, a_, a1_, b_} {
		if rec.Root != r.ID {
			t.Fatalf("span %s has Root %d, want %d", rec.Name, rec.Root, r.ID)
		}
	}
	if r2.Root != r2.ID {
		t.Fatalf("root2.Root = %d, want its own id %d", r2.Root, r2.ID)
	}
	// Time containment: every child interval lies within its parent's.
	contains := func(outer, inner SpanRecord) bool {
		return inner.Start >= outer.Start && inner.Start+inner.Dur <= outer.Start+outer.Dur
	}
	for _, pair := range [][2]SpanRecord{{r, a_}, {r, b_}, {a_, a1_}} {
		if !contains(pair[0], pair[1]) {
			t.Fatalf("span %s [%v+%v] not contained in parent %s [%v+%v]",
				pair[1].Name, pair[1].Start, pair[1].Dur,
				pair[0].Name, pair[0].Start, pair[0].Dur)
		}
	}
	// Records are ordered by start time.
	for i := 1; i < len(recs); i++ {
		if recs[i].Start < recs[i-1].Start {
			t.Fatal("Records not ordered by start time")
		}
	}
	if b_.Args["model"] != "m-1" {
		t.Fatalf("span args lost: %v", b_.Args)
	}
}

// TestSpanTreePropertyRandom builds randomized trees (deterministic
// shapes derived from the iteration index) and asserts the structural
// invariants hold for every shape: parent containment, root attribution,
// id uniqueness.
func TestSpanTreePropertyRandom(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		tr := NewTracer()
		ctx := WithTracer(context.Background(), tr)
		seed := uint64(trial)*2654435761 + 12345
		var build func(ctx context.Context, depth int)
		build = func(ctx context.Context, depth int) {
			children := int(seed>>uint(depth*3)%3) + 1
			if depth >= 3 {
				children = 0
			}
			ctx2, sp := StartSpan(ctx, fmt.Sprintf("d%d", depth))
			for c := 0; c < children; c++ {
				build(ctx2, depth+1)
			}
			sp.End()
		}
		build(ctx, 0)
		recs := tr.Records()
		byID := map[int64]SpanRecord{}
		for _, r := range recs {
			if _, dup := byID[r.ID]; dup {
				t.Fatalf("trial %d: duplicate span id %d", trial, r.ID)
			}
			byID[r.ID] = r
		}
		for _, r := range recs {
			if r.Parent == 0 {
				if r.Root != r.ID {
					t.Fatalf("trial %d: root span %d has Root %d", trial, r.ID, r.Root)
				}
				continue
			}
			p, ok := byID[r.Parent]
			if !ok {
				t.Fatalf("trial %d: span %d has unknown parent %d", trial, r.ID, r.Parent)
			}
			if r.Root != p.Root {
				t.Fatalf("trial %d: span %d Root %d != parent Root %d", trial, r.ID, r.Root, p.Root)
			}
			if r.Start < p.Start || r.Start+r.Dur > p.Start+p.Dur {
				t.Fatalf("trial %d: span %d not contained in parent %d", trial, r.ID, r.Parent)
			}
		}
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	_, sp := StartSpan(ctx, "once")
	sp.End()
	sp.End()
	sp.Arg("late", "ignored")
	if n := len(tr.Records()); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
	if args := tr.Records()[0].Args; args != nil {
		t.Fatalf("Arg after End mutated the record: %v", args)
	}
}

func TestWriteTraceChromeFormat(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	ctx1, root := StartSpan(ctx, "recover")
	_, fetch := StartSpan(ctx1, "fetch")
	fetch.Arg("blob", "params")
	fetch.End()
	root.End()
	_, open := StartSpan(ctx, "inflight") // never ended: must not appear
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int64             `json:"pid"`
			Tid  int64             `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2 (in-flight span must be excluded)", len(out.TraceEvents))
	}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph %q, want complete event \"X\"", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("event %q has negative ts/dur", ev.Name)
		}
		if ev.Pid != 1 {
			t.Fatalf("event %q pid = %d, want 1", ev.Name, ev.Pid)
		}
	}
	if out.TraceEvents[0].Tid != out.TraceEvents[1].Tid {
		t.Fatal("spans of one tree must share a tid (track)")
	}
	if out.TraceEvents[1].Args["blob"] != "params" {
		t.Fatal("span args missing from trace event")
	}
}

// TestTracerConcurrentSpans hammers span creation/end from many
// goroutines under -race.
func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer()
	ctx := WithTracer(context.Background(), tr)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 50
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < perWorker; n++ {
				c1, root := StartSpan(ctx, "op")
				_, child := StartSpan(c1, "phase")
				child.Arg("n", "x")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	recs := tr.Records()
	if len(recs) != workers*perWorker*2 {
		t.Fatalf("got %d records, want %d", len(recs), workers*perWorker*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace output is not valid JSON")
	}
}

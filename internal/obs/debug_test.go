package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv.ops").Add(12)
	reg.Gauge("srv.conns").Set(3)
	reg.Histogram("srv.lat_us").Observe(250)

	ds, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	base := "http://" + ds.Addr()

	get := func(path string, hdr map[string]string) (int, string, string) {
		req, err := http.NewRequest(http.MethodGet, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	if code, body, _ := get("/healthz", nil); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body, ct := get("/metrics", nil)
	if code != http.StatusOK || !strings.Contains(ct, "application/json") {
		t.Fatalf("/metrics = %d content-type %q", code, ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics JSON invalid: %v", err)
	}
	if snap.Counters["srv.ops"] != 12 || snap.Gauges["srv.conns"] != 3 {
		t.Fatalf("/metrics snapshot wrong: %+v", snap)
	}

	// Counters must move between scrapes — the live-introspection point.
	reg.Counter("srv.ops").Add(8)
	_, body2, _ := get("/metrics", nil)
	var snap2 Snapshot
	if err := json.Unmarshal([]byte(body2), &snap2); err != nil {
		t.Fatal(err)
	}
	if snap2.Counters["srv.ops"] != 20 {
		t.Fatalf("second scrape srv.ops = %d, want 20", snap2.Counters["srv.ops"])
	}

	code, body, ct = get("/metrics?format=prom", nil)
	if code != http.StatusOK || !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics?format=prom = %d content-type %q", code, ct)
	}
	if !strings.Contains(body, "# TYPE srv_ops counter") || !strings.Contains(body, "srv_ops 20") {
		t.Fatalf("prometheus exposition missing counter: %q", body)
	}
	if !strings.Contains(body, `srv_lat_us{quantile="0.99"}`) {
		t.Fatalf("prometheus exposition missing summary quantiles: %q", body)
	}

	if code, body, _ := get("/metrics", map[string]string{"Accept": "text/plain"}); code != http.StatusOK || !strings.Contains(body, "# TYPE") {
		t.Fatalf("Accept: text/plain should select prometheus format, got %q", body)
	}

	if code, body, _ := get("/debug/pprof/", nil); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d %q", code, body[:min(len(body), 120)])
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(io.Discard)
	defer SetLevel(LevelInfo)

	SetLevel(LevelInfo)
	Debugf("hidden %d", 1)
	Infof("shown %d", 2)
	Warnf("warned")
	Errorf("errored")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatal("debug message leaked at info level")
	}
	for _, want := range []string{"INFO shown 2", "WARN warned", "ERROR errored"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}

	buf.Reset()
	SetLevel(LevelError)
	Infof("quiet")
	Warnf("quiet too")
	Errorf("loud")
	out = buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Fatalf("quiet level filtering wrong: %q", out)
	}

	buf.Reset()
	SetLevel(LevelDebug)
	Debugf("verbose")
	if !strings.Contains(buf.String(), "DEBUG verbose") {
		t.Fatalf("debug level should pass Debugf: %q", buf.String())
	}
}

func TestLogFlags(t *testing.T) {
	defer SetLevel(LevelInfo)
	cases := []struct {
		args []string
		want Level
	}{
		{nil, LevelInfo},
		{[]string{"-v"}, LevelDebug},
		{[]string{"-quiet"}, LevelError},
		{[]string{"-v", "-quiet"}, LevelError}, // quiet wins
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		apply := LogFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatal(err)
		}
		apply()
		if got := Level(logger.level.Load()); got != tc.want {
			t.Fatalf("args %v: level = %v, want %v", tc.args, got, tc.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

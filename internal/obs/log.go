package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity. Messages below the configured level are
// dropped.
type Level int32

// Log levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	default:
		return fmt.Sprintf("LEVEL(%d)", int32(l))
	}
}

// logger is the process-wide leveled logger the binaries share. Output
// defaults to stderr at LevelInfo.
var logger = struct {
	mu    sync.Mutex
	out   io.Writer
	level atomic.Int32
}{out: os.Stderr}

func init() { logger.level.Store(int32(LevelInfo)) }

// SetLevel sets the minimum severity that gets written.
func SetLevel(l Level) { logger.level.Store(int32(l)) }

// SetLogOutput redirects log output (tests; defaults to stderr).
func SetLogOutput(w io.Writer) {
	logger.mu.Lock()
	logger.out = w
	logger.mu.Unlock()
}

func logf(l Level, format string, args ...any) {
	if int32(l) < logger.level.Load() {
		return
	}
	msg := fmt.Sprintf(format, args...)
	ts := time.Now().Format("2006/01/02 15:04:05")
	logger.mu.Lock()
	fmt.Fprintf(logger.out, "%s %s %s\n", ts, l, msg)
	logger.mu.Unlock()
}

// Debugf logs at debug level (enabled by -v).
func Debugf(format string, args ...any) { logf(LevelDebug, format, args...) }

// Infof logs at info level (the default).
func Infof(format string, args ...any) { logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func Warnf(format string, args ...any) { logf(LevelWarn, format, args...) }

// Errorf logs at error level (survives -quiet).
func Errorf(format string, args ...any) { logf(LevelError, format, args...) }

// Fatalf logs at error level and exits with status 1.
func Fatalf(format string, args ...any) {
	logf(LevelError, format, args...)
	os.Exit(1)
}

// LogFlags registers the shared -v / -quiet convention on fs and returns
// an apply function to call after flag parsing. -v enables debug output;
// -quiet keeps only errors; -quiet wins when both are set.
func LogFlags(fs *flag.FlagSet) (apply func()) {
	verbose := fs.Bool("v", false, "verbose (debug-level) logging")
	quiet := fs.Bool("quiet", false, "log errors only")
	return func() {
		switch {
		case *quiet:
			SetLevel(LevelError)
		case *verbose:
			SetLevel(LevelDebug)
		default:
			SetLevel(LevelInfo)
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.ops") != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a different handle")
	}
	g := r.Gauge("a.conns")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	if r.Gauge("a.conns") != g {
		t.Fatal("Gauge is not get-or-create")
	}
	if r.Histogram("a.lat") != r.Histogram("a.lat") {
		t.Fatal("Histogram is not get-or-create")
	}
}

func TestBucketOfMonotoneAndBounded(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxInt64} {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d: not monotone", v, b, prev)
		}
		if b < 0 || b >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, b, histBuckets)
		}
		prev = b
	}
	// A bucket's representative value must land back in the same bucket.
	for b := 0; b < histBuckets; b++ {
		mid := bucketMid(b)
		if mid < 0 {
			// Top buckets overflow int64 midpoints; they are unreachable
			// by Observe anyway (MaxInt64 maps below them).
			continue
		}
		if got := bucketOf(mid); got != b {
			t.Fatalf("bucketOf(bucketMid(%d)=%d) = %d, want %d", b, mid, got, b)
		}
	}
}

// TestHistogramPercentilesAgainstOracle checks histogram percentile
// estimates against exact percentiles from the sorted sample, for several
// distributions. Log-linear bucketing with 32 sub-buckets per octave
// bounds relative error by 1/32 plus half a bucket, so 5% is a safe gate.
func TestHistogramPercentilesAgainstOracle(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) int64{
		"uniform":   func(r *rand.Rand) int64 { return r.Int63n(1_000_000) },
		"exp":       func(r *rand.Rand) int64 { return int64(r.ExpFloat64() * 50_000) },
		"lognormal": func(r *rand.Rand) int64 { return int64(math.Exp(r.NormFloat64()*2 + 8)) },
		"constant":  func(*rand.Rand) int64 { return 4242 },
		"small":     func(r *rand.Rand) int64 { return r.Int63n(20) },
	}
	for name, gen := range distributions {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			h := newHistogram()
			sample := make([]int64, 10_000)
			for i := range sample {
				v := gen(rng)
				sample[i] = v
				h.Observe(v)
			}
			sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
			s := h.Snapshot()
			if s.Count != int64(len(sample)) {
				t.Fatalf("Count = %d, want %d", s.Count, len(sample))
			}
			var sum int64
			for _, v := range sample {
				sum += v
			}
			if s.Sum != sum {
				t.Fatalf("Sum = %d, want %d", s.Sum, sum)
			}
			if s.Min != sample[0] || s.Max != sample[len(sample)-1] {
				t.Fatalf("Min/Max = %d/%d, want %d/%d", s.Min, s.Max, sample[0], sample[len(sample)-1])
			}
			check := func(q float64, got int64) {
				exact := sample[rank(int64(len(sample)), q)-1]
				// Allow bucket quantization: ~3.1% relative plus a couple
				// of units of absolute slack for tiny values.
				tol := float64(exact)*0.05 + 2
				if math.Abs(float64(got-exact)) > tol {
					t.Errorf("p%.0f = %d, oracle %d (tolerance %.1f)", q*100, got, exact, tol)
				}
			}
			check(0.50, s.P50)
			check(0.95, s.P95)
			check(0.99, s.P99)
		})
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := newHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v, want zeros", s)
	}
	h.Observe(-5) // clamped to 0
	s = h.Snapshot()
	if s.Count != 1 || s.Min != 0 || s.Max != 0 || s.P50 != 0 {
		t.Fatalf("after Observe(-5): %+v, want count=1 all-zero stats", s)
	}
	h.ObserveDuration(3 * time.Millisecond)
	if s = h.Snapshot(); s.Max != 3000 {
		t.Fatalf("ObserveDuration(3ms): Max = %d µs, want 3000", s.Max)
	}
}

// TestSnapshotDeterminism verifies that serializing the same snapshot
// repeatedly produces byte-identical output (sorted keys) for both JSON
// and Prometheus text.
func TestSnapshotDeterminism(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter(fmt.Sprintf("c.%02d", 49-i)).Add(int64(i))
		r.Gauge(fmt.Sprintf("g.%02d", 49-i)).Set(int64(i))
		r.Histogram(fmt.Sprintf("h.%02d", 49-i)).Observe(int64(i))
	}
	snap := r.Snapshot()
	var first bytes.Buffer
	if err := snap.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	var firstProm bytes.Buffer
	if err := snap.WriteProm(&firstProm); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var js, prom bytes.Buffer
		if err := snap.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		if err := snap.WriteProm(&prom); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(js.Bytes(), first.Bytes()) {
			t.Fatal("WriteJSON output differs between calls on the same snapshot")
		}
		if !bytes.Equal(prom.Bytes(), firstProm.Bytes()) {
			t.Fatal("WriteProm output differs between calls on the same snapshot")
		}
	}
	// Prometheus metric names must be sorted and sanitized.
	lines := strings.Split(firstProm.String(), "\n")
	var names []string
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			names = append(names, strings.Fields(l)[2])
		}
	}
	if !sort.StringsAreSorted(names[:50]) { // counters block
		t.Fatal("prometheus counter names not sorted")
	}
	for _, n := range names {
		if strings.ContainsAny(n, ".-") {
			t.Fatalf("prometheus name %q not sanitized", n)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	r.Gauge("conns").Set(2)
	r.Histogram("lat_us").Observe(150)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["ops"] != 3 || back.Gauges["conns"] != 2 || back.Histograms["lat_us"].Count != 1 {
		t.Fatalf("round-tripped snapshot lost data: %+v", back)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(10)
	r.Gauge("conns").Set(4)
	r.Histogram("lat").Observe(100)
	before := r.Snapshot()
	r.Counter("ops").Add(5)
	r.Counter("fresh").Inc()
	r.Gauge("conns").Set(9)
	r.Histogram("lat").Observe(200)
	d := r.Snapshot().Delta(before)
	if d.Counters["ops"] != 5 {
		t.Fatalf("delta ops = %d, want 5", d.Counters["ops"])
	}
	if d.Counters["fresh"] != 1 {
		t.Fatalf("delta fresh = %d, want 1 (missing-from-prev counts from zero)", d.Counters["fresh"])
	}
	if d.Gauges["conns"] != 9 {
		t.Fatalf("delta gauge = %d, want current value 9", d.Gauges["conns"])
	}
	h := d.Histograms["lat"]
	if h.Count != 1 || h.Sum != 200 {
		t.Fatalf("delta histogram count/sum = %d/%d, want 1/200", h.Count, h.Sum)
	}
}

// TestRaceSnapshotWhileUpdating is the -race hammer the satellite asks
// for: many writers mutate every metric kind (and register new ones)
// while readers snapshot and serialize concurrently.
func TestRaceSnapshotWhileUpdating(t *testing.T) {
	r := NewRegistry()
	const writers, snapshots = 8, 40
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("hammer.ops")
			g := r.Gauge("hammer.conns")
			h := r.Histogram("hammer.lat")
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(int64(n % 100_000))
				if n%64 == 0 {
					// Concurrent registration exercises the map writes.
					r.Counter(fmt.Sprintf("hammer.dyn.%d.%d", id, n%8)).Inc()
				}
			}
		}(i)
	}
	for r.Counter("hammer.ops").Value() == 0 {
		// Wait for the writers to actually start before snapshotting.
	}
	for i := 0; i < snapshots; i++ {
		s := r.Snapshot()
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	final := r.Snapshot()
	if final.Counters["hammer.ops"] == 0 {
		t.Fatal("hammer counter never moved")
	}
	h := final.Histograms["hammer.lat"]
	if h.Count == 0 || h.Sum < 0 {
		t.Fatalf("hammer histogram inconsistent after race: %+v", h)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.ops")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.lat")
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			h.Observe(v)
			v = (v + 7919) % (1 << 30)
		}
	})
}

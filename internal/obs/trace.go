package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects completed spans and renders them as a Chrome
// trace-event file (chrome://tracing, Perfetto). It is safe for
// concurrent use; a nil *Tracer is valid and records nothing, so
// instrumented code never branches on "is tracing on".
type Tracer struct {
	base  time.Time
	next  atomic.Int64
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer creates a tracer whose span timestamps are relative to now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// SpanRecord is one completed span.
type SpanRecord struct {
	ID     int64
	Parent int64 // 0 for root spans
	Root   int64 // id of the root span of this tree (its own id for roots)
	Name   string
	Start  time.Duration // offset from the tracer's base time
	Dur    time.Duration
	Args   map[string]string
}

// Span is one in-flight operation. All methods are nil-safe, so callers
// write straight-line instrumentation regardless of whether tracing is
// active.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	root   int64
	name   string
	start  time.Duration

	mu    sync.Mutex
	args  map[string]string
	ended bool
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying tr; spans started under it are
// recorded there.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// StartSpan starts a span named name. If ctx carries a span, the new span
// is its child; otherwise, if ctx carries a tracer, it is a new root.
// With neither, it returns (ctx, nil) — and every method on a nil span is
// a no-op. The returned context carries the new span for nesting.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey).(*Span)
	var tr *Tracer
	if parent != nil {
		tr = parent.tr
	} else {
		tr = TracerFrom(ctx)
	}
	if tr == nil {
		return ctx, nil
	}
	sp := &Span{
		tr:    tr,
		id:    tr.next.Add(1),
		name:  name,
		start: time.Since(tr.base),
	}
	if parent != nil {
		sp.parent = parent.id
		sp.root = parent.root
	} else {
		sp.root = sp.id
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// Arg attaches a key/value annotation to the span and returns it for
// chaining. No-op after End.
func (s *Span) Arg(k, v string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if !s.ended {
		if s.args == nil {
			s.args = make(map[string]string)
		}
		s.args[k] = v
	}
	s.mu.Unlock()
	return s
}

// End completes the span and records it with the tracer. Idempotent; only
// the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Since(s.tr.base)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	args := s.args
	s.mu.Unlock()
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Root:   s.root,
		Name:   s.name,
		Start:  s.start,
		Dur:    end - s.start,
		Args:   args,
	}
	s.tr.mu.Lock()
	s.tr.spans = append(s.tr.spans, rec)
	s.tr.mu.Unlock()
}

// Records returns a copy of the completed spans, ordered by start time
// (ties broken by id, which increases in start order).
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// traceEvent is one Chrome trace-event ("X" = complete event). Timestamps
// and durations are microseconds; tid groups each span tree onto its own
// track.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	Pid  int64             `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteTrace writes all completed spans as Chrome trace-event JSON. Spans
// still in flight at call time are not included.
func (t *Tracer) WriteTrace(w io.Writer) error {
	recs := t.Records()
	events := make([]traceEvent, len(recs))
	for i, r := range recs {
		events[i] = traceEvent{
			Name: r.Name,
			Ph:   "X",
			Ts:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  r.Root,
			Args: r.Args,
		}
	}
	b, err := json.MarshalIndent(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{events}, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding trace: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Model diff: inspect which layers changed between two model versions the
// way the parameter update approach does — per-layer hashes organized in a
// Merkle tree, compared top-down so unchanged subtrees are pruned (paper
// Section 3.2, Figure 4).
//
//	go run ./examples/model_diff
package main

import (
	"fmt"
	"log"

	"repro/internal/merkle"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/mmlib"
)

func main() {
	// Base model and a partially updated version (classifier retrained).
	base, err := mmlib.BuildModel(mmlib.ResNet18, 1000, 42)
	if err != nil {
		log.Fatal(err)
	}
	baseHashes := nn.StateDictOf(base).LayerHashes()

	derived, err := mmlib.BuildModel(mmlib.ResNet18, 1000, 42) // same seed = same weights
	if err != nil {
		log.Fatal(err)
	}
	// Simulate a partial update: only the final classifier changes.
	for _, p := range nn.NamedParams(derived) {
		if nn.LayerOf(p.Path) == models.ClassifierPrefix(mmlib.ResNet18) {
			d := p.Param.Value.Data()
			for i := range d {
				d[i] += 0.01
			}
		}
	}
	derivedHashes := nn.StateDictOf(derived).LayerHashes()

	toLeaves := func(hs []nn.KeyHash) []merkle.Leaf {
		out := make([]merkle.Leaf, len(hs))
		for i, h := range hs {
			out[i] = merkle.Leaf{Name: h.Key, Hash: h.Hash}
		}
		return out
	}
	baseTree, err := merkle.Build(toLeaves(baseHashes))
	if err != nil {
		log.Fatal(err)
	}
	derivedTree, err := merkle.Build(toLeaves(derivedHashes))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model: %s — %d layers carrying state\n", mmlib.ResNet18, baseTree.NumLeaves())
	fmt.Printf("root hashes: base=%s… derived=%s…\n", baseTree.Root()[:12], derivedTree.Root()[:12])
	if baseTree.Root() == derivedTree.Root() {
		fmt.Println("models are identical (single root comparison)")
		return
	}

	res, err := merkle.Diff(baseTree, derivedTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("changed layers (found with %d node comparisons instead of %d leaf comparisons):\n",
		res.Comparisons, baseTree.NumLeaves())
	for _, name := range res.Changed {
		fmt.Printf("  %s\n", name)
	}

	// The parameter update the PUA would store: just those layers.
	update := nn.StateDictOf(derived).SubsetByLayers(res.Changed)
	full := nn.StateDictOf(derived)
	fmt.Printf("parameter update: %d of %d tensors, %.1f%% of the full snapshot bytes\n",
		update.Len(), full.Len(), 100*float64(update.SerializedSize())/float64(full.SerializedSize()))
}

// Quickstart: save and recover a model with all three approaches and
// compare their storage consumption, time-to-save, and time-to-recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/mmlib"
)

func main() {
	dir, err := os.MkdirTemp("", "mmlib-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stores, err := mmlib.OpenLocalStores(dir)
	if err != nil {
		log.Fatal(err)
	}

	// A training dataset for the derived model version. At full scale this
	// would be the paper's CO-512 (71.6 MB); we shrink it for a quick run.
	ds, err := mmlib.GenerateDataset(mmlib.DatasetSpec{
		Name: "quickstart", Images: 64, H: 32, W: 32, Classes: 10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	spec := mmlib.Spec{Arch: mmlib.TinyCNN, NumClasses: 10}
	for _, build := range []struct {
		name string
		mk   func(mmlib.Stores) mmlib.SaveService
	}{
		{"baseline", mmlib.NewBaseline},
		{"param_update", mmlib.NewParamUpdate},
		{"provenance", mmlib.NewProvenance},
	} {
		svc := build.mk(stores)

		// 1. Develop the initial model (U1) and save it.
		net, err := mmlib.BuildModel(mmlib.TinyCNN, 10, 42)
		if err != nil {
			log.Fatal(err)
		}
		u1, err := svc.Save(mmlib.SaveInfo{Spec: spec, Net: net, WithChecksums: true})
		if err != nil {
			log.Fatal(err)
		}

		// 2. Derive a new version by training (U3). The provenance record
		// snapshots the training setup before it runs, so the provenance
		// approach can re-execute it bit-identically.
		tsvc, err := mmlib.NewTrainService(ds,
			mmlib.LoaderConfig{BatchSize: 8, OutH: 32, OutW: 32, Shuffle: true, Seed: 2},
			mmlib.SGDConfig{LR: 0.05, Momentum: 0.9},
			mmlib.ServiceConfig{Epochs: 2, Seed: 3, Deterministic: true})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := mmlib.NewProvenanceRecord(tsvc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rec.Train(net); err != nil {
			log.Fatal(err)
		}
		u3, err := svc.Save(mmlib.SaveInfo{
			Spec: spec, Net: net, BaseID: u1.ID,
			WithChecksums: true, Provenance: rec,
		})
		if err != nil {
			log.Fatal(err)
		}

		// 3. Recover the derived model and verify it is bit-identical.
		got, err := svc.Recover(u3.ID, mmlib.RecoverOptions{VerifyChecksums: true})
		if err != nil {
			log.Fatal(err)
		}
		if !mmlib.ModelEqual(net, got.Net) {
			log.Fatalf("%s: recovered model differs!", build.name)
		}
		fmt.Printf("%-12s  derived save: %7d B in %8s   recover: %8s (exact match ✓)\n",
			build.name, u3.StorageBytes, u3.Duration.Round(1e5), got.Timing.Total().Round(1e5))
	}
}

// Provenance training: the model provenance approach end to end. A model's
// reproducibility is first verified with the probing tool (paper Section
// 2.4); a derived version is then saved as provenance only — training
// service, optimizer state, compressed dataset — with no parameters at all;
// finally the model is recovered by re-executing the training and checked
// to be bit-identical.
//
//	go run ./examples/provenance_training
package main

import (
	"fmt"
	"log"
	"os"

	"repro/mmlib"
)

func main() {
	dir, err := os.MkdirTemp("", "mmlib-prov-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stores, err := mmlib.OpenLocalStores(dir)
	if err != nil {
		log.Fatal(err)
	}
	mpa := mmlib.NewProvenance(stores)

	// Step 1: verify that the model is reproducible in this setup — a
	// precondition for recovering it by retraining. Probing in parallel
	// (non-deterministic) mode shows why deterministic mode matters.
	net, err := mmlib.BuildModel(mmlib.TinyCNN, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mmlib.ProbeConfig{Seed: 1, BatchSize: 4, H: 24, W: 24, Classes: 10, Deterministic: true}
	ok, diffs, err := mmlib.VerifyReproducible(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe (deterministic mode): reproducible=%v, differences=%d\n", ok, len(diffs))
	if !ok {
		log.Fatal("model must be reproducible for the provenance approach")
	}

	// Step 2: save the initial model (full snapshot — MPA uses the
	// baseline logic for the first model).
	spec := mmlib.Spec{Arch: mmlib.TinyCNN, NumClasses: 10}
	u1, err := mpa.Save(mmlib.SaveInfo{Spec: spec, Net: net, WithChecksums: true})
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: train a derived version and save only its provenance.
	ds, err := mmlib.GenerateDataset(mmlib.DatasetSpec{
		Name: "prov-data", Images: 48, H: 24, W: 24, Classes: 10, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	tsvc, err := mmlib.NewTrainService(ds,
		mmlib.LoaderConfig{BatchSize: 8, OutH: 24, OutW: 24, Shuffle: true, Seed: 12},
		mmlib.SGDConfig{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4},
		mmlib.ServiceConfig{Epochs: 3, Seed: 13, Deterministic: true})
	if err != nil {
		log.Fatal(err)
	}
	rec, err := mmlib.NewProvenanceRecord(tsvc) // snapshots pre-training state
	if err != nil {
		log.Fatal(err)
	}
	stats, err := rec.Train(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d batches (final loss %.4f) in %s\n",
		stats.Batches, stats.FinalLoss, stats.TotalTime().Round(1e6))

	u3, err := mpa.Save(mmlib.SaveInfo{
		Spec: spec, Net: net, BaseID: u1.ID, WithChecksums: true, Provenance: rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provenance save: %d B (dataset archive dominates; no parameters stored)\n", u3.StorageBytes)

	// Step 4: recover by re-executing the training; checksum verification
	// proves the reproduced model is the exact one that was saved.
	got, err := mpa.Recover(u3.ID, mmlib.RecoverOptions{VerifyChecksums: true})
	if err != nil {
		log.Fatal(err)
	}
	if !mmlib.ModelEqual(net, got.Net) {
		log.Fatal("recovered model differs")
	}
	fmt.Printf("recovered by retraining in %s — bit-identical (checksum verified ✓)\n",
		got.Timing.Total().Round(1e6))
	fmt.Printf("  breakdown: load=%s retrain=%s verify=%s\n",
		got.Timing.Load.Round(1e5), got.Timing.Recover.Round(1e5), got.Timing.Verify.Round(1e5))
}

// Model registry operations: the central server's view of the fleet (use
// case U4). A mixed history of models is saved with the adaptive approach
// and a shared dataset warehouse; the catalog then lists them, walks
// lineage, reports statistics, prunes an obsolete branch, and garbage
// collects the artifacts it left behind.
//
//	go run ./examples/model_registry
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/mmlib"
)

func main() {
	dir, err := os.MkdirTemp("", "mmlib-registry-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stores, err := mmlib.OpenLocalStores(dir)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := mmlib.NewDatasetManager(filepath.Join(dir, "warehouse"))
	if err != nil {
		log.Fatal(err)
	}
	svc := mmlib.NewProvenanceWithManager(stores, mgr)
	pua := mmlib.NewParamUpdate(stores)

	// The shared training dataset lives in the warehouse, stored once.
	ds, err := mmlib.GenerateDataset(mmlib.DatasetSpec{
		Name: "fleet-telemetry", Images: 48, H: 16, W: 16, Classes: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	spec := mmlib.Spec{Arch: mmlib.TinyCNN, NumClasses: 6}
	net, err := mmlib.BuildModel(mmlib.TinyCNN, 6, 7)
	if err != nil {
		log.Fatal(err)
	}
	u1, err := pua.Save(mmlib.SaveInfo{Spec: spec, Net: net, WithChecksums: true})
	if err != nil {
		log.Fatal(err)
	}

	// Three provenance generations, all referencing the warehouse dataset.
	lastID := u1.ID
	for gen := 0; gen < 3; gen++ {
		ref, dedup, err := mgr.Publish(ds)
		if err != nil {
			log.Fatal(err)
		}
		tsvc, err := mmlib.NewTrainService(ds,
			mmlib.LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: uint64(gen)},
			mmlib.SGDConfig{LR: 0.05, Momentum: 0.9},
			mmlib.ServiceConfig{Epochs: 1, Seed: uint64(10 + gen), Deterministic: true})
		if err != nil {
			log.Fatal(err)
		}
		rec, err := mmlib.NewProvenanceRecord(tsvc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := rec.Train(net); err != nil {
			log.Fatal(err)
		}
		rec.SetExternalDatasetRef(ref)
		res, err := svc.Save(mmlib.SaveInfo{Spec: spec, Net: net, BaseID: lastID, WithChecksums: true, Provenance: rec})
		if err != nil {
			log.Fatal(err)
		}
		lastID = res.ID
		fmt.Printf("generation %d saved: %s (%5d B, dataset dedup=%v)\n", gen+1, res.ID[:8], res.StorageBytes, dedup)
	}

	// The server's catalog view.
	cat := mmlib.NewCatalog(stores)
	st, err := cat.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d models (%d snapshots, %d provenance), %d B model storage\n",
		st.Models, st.Snapshots, st.Provenance, st.TotalBytes)
	wst := mgr.Stats()
	fmt.Printf("warehouse: %d dataset(s), %d refs, %d B stored, %d B saved by dedup\n",
		wst.Datasets, wst.TotalRefs, wst.TotalBytes, wst.DedupSavedBytes)

	chain, err := cat.Chain(lastID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lineage of the newest model:")
	for _, e := range chain {
		fmt.Printf("  %s (%s, %s)\n", e.ID[:8], e.Approach, e.Kind)
	}

	// Recover through the adaptive service (handles mixed chains and
	// resolves warehouse dataset references).
	got, err := mmlib.NewAdaptiveWithManager(stores, mgr).Recover(lastID, mmlib.RecoverOptions{VerifyChecksums: true})
	if err != nil {
		log.Fatal(err)
	}
	if !mmlib.ModelEqual(net, got.Net) {
		log.Fatal("recovered model differs")
	}
	fmt.Printf("newest model recovered exactly in %s\n", got.Timing.Total().Round(1e6))

	// Prune the newest model (leaf), drop its warehouse reference, and
	// collect garbage.
	if err := cat.Delete(lastID, false); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Release(mustRef(mgr)); err != nil {
		log.Fatal(err)
	}
	blobs, bytes, err := cat.CollectGarbage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pruned newest model; gc reclaimed %d blob(s), %d B\n", blobs, bytes)
}

// mustRef returns the single warehouse reference (the example publishes one
// dataset).
func mustRef(mgr *mmlib.DatasetManager) string {
	infos := mgr.List()
	if len(infos) != 1 {
		log.Fatalf("expected 1 warehouse dataset, have %d", len(infos))
	}
	return infos[0].Ref
}

// Battery fleet: the paper's motivating example (Section 1). A fleet of
// electric vehicles each runs a battery-simulation model managed by its
// battery management system. Models are initialized from laboratory
// measurements, adapted per car from live measurements (frequent partial
// updates, use case U3), and must be exactly reproducible in central
// storage so an incident on any vehicle can be debugged with the precise
// model that was running.
//
// The example spins up the distributed deployment: a metadata server (the
// MongoDB stand-in), a shared file store, and one goroutine per vehicle,
// each saving its partially updated model versions with the parameter
// update approach. At the end, the "incident" on one vehicle is
// investigated by recovering the exact model that produced it.
//
//	go run ./examples/battery_fleet
package main

import (
	"fmt"
	"log"
	"os"
	"sync"

	"repro/internal/docdb"
	"repro/mmlib"
)

const (
	vehicles       = 6
	updatesPerCar  = 3
	batteryClasses = 8 // discretized state-of-health bands the model predicts
)

func main() {
	// Central infrastructure: metadata server + shared file store.
	srv, err := docdb.NewServer(docdb.NewMemStore(), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	filesDir, err := os.MkdirTemp("", "mmlib-fleet-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(filesDir)

	serverStores, err := mmlib.ConnectStores(srv.Addr(), filesDir)
	if err != nil {
		log.Fatal(err)
	}
	defer serverStores.Meta.Close()
	central := mmlib.NewParamUpdate(serverStores)

	// U1: the lab develops the initial battery model from laboratory cell
	// measurements and registers it centrally.
	spec := mmlib.Spec{Arch: mmlib.TinyCNN, NumClasses: batteryClasses}
	labModel, err := mmlib.BuildModel(mmlib.TinyCNN, batteryClasses, 2024)
	if err != nil {
		log.Fatal(err)
	}
	u1, err := central.Save(mmlib.SaveInfo{Spec: spec, Net: labModel, WithChecksums: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lab model registered: %s (%d B)\n", u1.ID[:8], u1.StorageBytes)

	// Each vehicle adapts the model to its own battery with locally
	// collected measurements (U3, partially updated versions) and reports
	// every version to the central store before using it.
	type carReport struct {
		car     int
		modelID string
		bytes   int64
	}
	reports := make([][]carReport, vehicles)
	var wg sync.WaitGroup
	errs := make(chan error, vehicles)
	for car := 0; car < vehicles; car++ {
		wg.Add(1)
		go func(car int) {
			defer wg.Done()
			stores, err := mmlib.ConnectStores(srv.Addr(), filesDir)
			if err != nil {
				errs <- err
				return
			}
			defer stores.Meta.Close()
			svc := mmlib.NewParamUpdate(stores)

			// The vehicle received the lab model in U1.
			rec, err := svc.Recover(u1.ID, mmlib.RecoverOptions{VerifyChecksums: true})
			if err != nil {
				errs <- err
				return
			}
			net := rec.Net
			mmlib.FreezeForPartialUpdate(mmlib.TinyCNN, net)

			baseID := u1.ID
			for upd := 0; upd < updatesPerCar; upd++ {
				// Locally collected battery telemetry, biased per car (the
				// paper: "the locally collected data is slightly biased").
				telemetry, err := mmlib.GenerateDataset(mmlib.DatasetSpec{
					Name:   fmt.Sprintf("car%d-window%d", car, upd),
					Images: 32, H: 16, W: 16,
					Classes: batteryClasses,
					Seed:    uint64(1000*car + upd),
				})
				if err != nil {
					errs <- err
					return
				}
				tsvc, err := mmlib.NewTrainService(telemetry,
					mmlib.LoaderConfig{BatchSize: 8, OutH: 16, OutW: 16, Shuffle: true, Seed: uint64(upd)},
					mmlib.SGDConfig{LR: 0.05, Momentum: 0.9},
					mmlib.ServiceConfig{Epochs: 2, Seed: uint64(car), Deterministic: true})
				if err != nil {
					errs <- err
					return
				}
				provRec, err := mmlib.NewProvenanceRecord(tsvc)
				if err != nil {
					errs <- err
					return
				}
				if _, err := provRec.Train(net); err != nil {
					errs <- err
					return
				}
				res, err := svc.Save(mmlib.SaveInfo{
					Spec: spec, Net: net, BaseID: baseID, WithChecksums: true,
				})
				if err != nil {
					errs <- err
					return
				}
				baseID = res.ID
				reports[car] = append(reports[car], carReport{car: car, modelID: res.ID, bytes: res.StorageBytes})
			}
		}(car)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		log.Fatal(err)
	}

	var total int64
	for car := range reports {
		for _, r := range reports[car] {
			total += r.bytes
		}
	}
	fmt.Printf("%d vehicles reported %d partially updated versions, %d B total (vs %d B as full snapshots)\n",
		vehicles, vehicles*updatesPerCar, total, int64(vehicles*updatesPerCar)*u1.StorageBytes)

	// Incident on vehicle 3 after its second update: central engineering
	// recovers the exact model version that was driving (U4) and verifies
	// it against the stored checksums.
	incident := reports[3][1]
	got, err := central.Recover(incident.modelID, mmlib.RecoverOptions{VerifyChecksums: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incident model %s recovered losslessly in %s — ready for debugging\n",
		incident.modelID[:8], got.Timing.Total().Round(1e5))
}
